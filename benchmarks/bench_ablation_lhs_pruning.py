"""Experiment E8 — the §4.3 max-LHS-size pruning.

The paper's answer to FD sets that outgrow memory: prune all FDs with
a LHS wider than a bound during discovery; Algorithm 3 still computes
the complete, correct closure for every surviving FD, and short-LHS
FDs are the semantically better constraint candidates anyway.

Measured here on the Flight-shaped dataset (the FD-heaviest profile):
discovery time and FD count shrink with the bound, and a correctness
check confirms that every surviving FD's closure matches the
unpruned run's closure.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.core.closure import optimized_closure
from repro.discovery.hyfd import HyFD
from repro.evaluation.reporting import format_table

BOUNDS = [2, 3, 4, None]

_ROWS: dict[str, dict[str, float]] = {}
_CLOSURES: dict[str, dict[int, int]] = {}


@pytest.fixture(scope="module", autouse=True)
def _pruning_report(request):
    yield
    if not _ROWS:
        return
    headers = ["max |LHS|", "#FDs", "discovery (s)", "closure (s)", "closure correct"]
    rows = []
    full = _CLOSURES.get("None")
    for bound in BOUNDS:
        key = str(bound)
        data = _ROWS.get(key)
        if not data:
            continue
        correct = "-"
        pruned = _CLOSURES.get(key)
        if full is not None and pruned is not None:
            correct = str(
                all(full.get(lhs) == rhs for lhs, rhs in pruned.items())
            )
        rows.append([
            key,
            int(data["fds"]),
            f"{data['discovery']:.3f}",
            f"{data['closure']:.4f}",
            correct,
        ])
    emit(
        format_table(
            headers,
            rows,
            title="Ablation: max-LHS pruning (paper §4.3) on the Flight-shaped dataset",
        ),
        request,
        filename="ablation_lhs_pruning",
    )


@pytest.mark.parametrize("bound", BOUNDS, ids=lambda b: str(b))
def test_discovery_with_pruning(benchmark, bound, datasets):
    instance = datasets["flight"]
    fds = benchmark.pedantic(
        HyFD(max_lhs_size=bound).discover,
        args=(instance,),
        rounds=1,
        iterations=1,
    )
    row = _ROWS.setdefault(str(bound), {})
    row["fds"] = fds.count_single_rhs()
    row["discovery"] = benchmark.stats.stats.mean

    import time

    started = time.perf_counter()
    extended = optimized_closure(fds)
    row["closure"] = time.perf_counter() - started
    _CLOSURES[str(bound)] = dict(extended.items())
