"""Experiment E7 — ablation of the §7 scoring features.

The paper motivates four violating-FD features (length, value,
position, duplication) but evaluates only the full combination.  This
ablation quantifies each feature's contribution on the TPC-H recovery
task: normalize the same universal relation (same FDs, same data) with
feature subsets and compare schema-recovery quality.

Expected shape: the full feature set recovers the schema best; single
features degrade gracefully rather than collapse, because many
snowflake splits are easy calls.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.core.normalize import Normalizer
from repro.datagen.tpch import TPCH_GOLD
from repro.discovery.precomputed import PrecomputedFDs
from repro.evaluation.metrics import evaluate_schema_recovery
from repro.evaluation.reporting import format_table

CONFIGS: dict[str, tuple[str, ...]] = {
    "all-features": ("length", "value", "position", "duplication"),
    "no-duplication": ("length", "value", "position"),
    "no-position": ("length", "value", "duplication"),
    "no-length": ("value", "position", "duplication"),
    "length-only": ("length",),
    "duplication-only": ("duplication",),
}

_ROWS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _ablation_report(request):
    yield
    if not _ROWS:
        return
    headers = ["Scoring features", "pair F1", "mean Jaccard", "#relations", "exact"]
    rows = [
        [
            name,
            f"{data['f1']:.3f}",
            f"{data['jaccard']:.3f}",
            int(data["relations"]),
            int(data["exact"]),
        ]
        for name, data in _ROWS.items()
    ]
    emit(
        format_table(
            headers,
            rows,
            title="Ablation: violating-FD scoring features (paper §7) on TPC-H recovery",
        ),
        request,
        filename="ablation_scoring_features",
    )


@pytest.mark.parametrize("config", list(CONFIGS))
def test_scoring_ablation(benchmark, config, datasets, discovery):
    universal = datasets["tpch"]
    fds = discovery.fds("tpch")
    normalizer = Normalizer(
        algorithm=PrecomputedFDs({universal.name: fds}),
        score_features=CONFIGS[config],
    )
    result = benchmark.pedantic(
        normalizer.run, args=(universal,), rounds=1, iterations=1
    )
    report = evaluate_schema_recovery(result.schema, TPCH_GOLD)
    _ROWS[config] = {
        "f1": report.pair_f1,
        "jaccard": report.mean_jaccard,
        "relations": report.num_recovered_relations,
        "exact": len(report.perfectly_recovered),
    }
    if config == "all-features":
        assert report.pair_f1 > 0.85


def test_scoring_with_extended_features(benchmark, datasets, discovery):
    """The §9-future-work features (name/cardinality/coverage) on top."""
    from repro.extensions.scoring_features import ExtendedScoringDecider

    universal = datasets["tpch"]
    fds = discovery.fds("tpch")
    normalizer = Normalizer(
        algorithm=PrecomputedFDs({universal.name: fds}),
        decider=ExtendedScoringDecider(extras_weight=1.0),
    )
    result = benchmark.pedantic(
        normalizer.run, args=(universal,), rounds=1, iterations=1
    )
    report = evaluate_schema_recovery(result.schema, TPCH_GOLD)
    _ROWS["all + extended (ext.)"] = {
        "f1": report.pair_f1,
        "jaccard": report.mean_jaccard,
        "relations": report.num_recovered_relations,
        "exact": len(report.perfectly_recovered),
    }
    assert report.pair_f1 > 0.85
