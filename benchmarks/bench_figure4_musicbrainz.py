"""Experiment E5 — the paper's Figure 4: normalizing MusicBrainz.

The eleven-table MusicBrainz-like join is *not* snowflake-shaped: two
m:n link tables fan it out, so the paper observes (a) almost all
original relations recovered, (b) ARTIST_CREDIT_NAME as the one
relation that is not reconstructed (absorbed into semantically related
relations), and (c) a fact-table-like top-level relation representing
the many-to-many relationships.

Expected shape here: the same three observations on the scaled
generator.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.core.normalize import Normalizer
from repro.datagen.musicbrainz import MUSICBRAINZ_GOLD
from repro.discovery.precomputed import PrecomputedFDs
from repro.evaluation.metrics import evaluate_schema_recovery
from repro.evaluation.snowflake import schema_tree

_REPORT: list[str] = []


@pytest.fixture(scope="module", autouse=True)
def _figure4_report(request):
    yield
    for text in _REPORT:
        emit(text, request, filename="figure4_musicbrainz_recovery")


def test_normalize_musicbrainz_universal(benchmark, datasets, discovery):
    universal = datasets["musicbrainz"]
    fds = discovery.fds("musicbrainz")
    normalizer = Normalizer(
        algorithm=PrecomputedFDs({universal.name: fds})
    )
    result = benchmark.pedantic(
        normalizer.run, args=(universal,), rounds=1, iterations=1
    )

    report = evaluate_schema_recovery(result.schema, MUSICBRAINZ_GOLD)
    # the root relation (kept name) is the fact-table-like top relation
    top = result.instances[universal.name]
    lines = [
        "Figure 4 (scaled): BCNF normalization of denormalized MusicBrainz",
        "=" * 64,
        schema_tree(result.schema),
        "",
        report.to_str(),
        "",
        f"values: {result.original_values} -> {result.total_values}",
        f"decompositions: {len(result.steps)}",
        f"top-level (fact-table-like) relation: {top.name} "
        f"({top.arity} attrs, {top.num_rows} rows)",
    ]
    acn_match = report.relation_matches.get("artist_credit_name", ("", 1.0))
    lines.append(
        f"artist_credit_name best match: J={acn_match[1]:.2f} "
        "(the paper reports exactly this relation as not reconstructed)"
    )
    _REPORT.append("\n".join(lines))

    # Shape assertions.
    assert report.pair_recall > 0.75
    assert report.pair_precision > 0.75
    assert len(report.perfectly_recovered) >= 7
    rebuilt = result.reconstruct(universal.name)
    assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())
