"""Experiment E5 — the paper's Figure 4: normalizing MusicBrainz.

The eleven-table MusicBrainz-like join is *not* snowflake-shaped: two
m:n link tables fan it out, so the paper observes (a) almost all
original relations recovered, (b) ARTIST_CREDIT_NAME as the one
relation that is not reconstructed (absorbed into semantically related
relations), and (c) a fact-table-like top-level relation representing
the many-to-many relationships.

Expected shape here: the same three observations on the scaled
generator.
"""

from __future__ import annotations

import pytest

from _util import emit, emit_json
from repro.core.normalize import Normalizer
from repro.datagen.musicbrainz import MUSICBRAINZ_GOLD
from repro.discovery.hyfd import HyFD
from repro.discovery.precomputed import PrecomputedFDs
from repro.evaluation.metrics import evaluate_schema_recovery
from repro.evaluation.snowflake import schema_tree
from repro.structures import fdtree

_REPORT: list[str] = []

#: operation → config ("backend-engine" or "auto") → seconds
_TIMINGS: dict[str, dict[str, float]] = {}

#: per-config sorted FD covers, asserted identical across configs
_COVERS: dict[str, list] = {}

#: FD-tree engine dimension for the discovery workload: MusicBrainz's
#: universal relation is 32 attributes wide — the level-indexed
#: lattice's home turf vs the recursive baseline.
ENGINES = ["level", "legacy"]


@pytest.fixture(params=ENGINES)
def fdtree_engine(request):
    fdtree.set_engine(request.param)
    yield request.param
    fdtree.set_engine(None)


@pytest.fixture(scope="module", autouse=True)
def _figure4_report(request, datasets):
    yield
    for text in _REPORT:
        emit(text, request, filename="figure4_musicbrainz_recovery")
    if not _TIMINGS:
        return
    universal = datasets["musicbrainz"]
    discovery = _TIMINGS.get("hyfd_discovery", {})
    python_s = discovery.get("python-level")
    numpy_s = discovery.get("numpy-level")
    engine_speedups = {}
    for backend in ("python", "numpy"):
        legacy_s = discovery.get(f"{backend}-legacy")
        level_s = discovery.get(f"{backend}-level")
        if legacy_s and level_s:
            engine_speedups[backend] = legacy_s / level_s
    emit_json(
        "figure4_musicbrainz",
        {
            "workers": 1,
            "dataset_sizes": {
                "musicbrainz_universal": {
                    "rows": universal.num_rows,
                    "columns": universal.arity,
                }
            },
            "timings_seconds": _TIMINGS,
            "hyfd_speedup_numpy_over_python": (
                python_s / numpy_s if python_s and numpy_s else None
            ),
            "hyfd_speedup_level_over_legacy": engine_speedups or None,
            "covers_identical_across_configs": (
                len(set(map(str, _COVERS.values()))) == 1
                if len(_COVERS) > 1
                else None
            ),
        },
    )


def test_hyfd_discovery_per_backend(benchmark, datasets, kernel, fdtree_engine):
    """End-to-end FD discovery on the denormalized MusicBrainz table,
    once per kernel backend × FD-tree engine — the Figure 4 pipeline's
    dominant cost.

    Beyond the timing, the discovered cover must be byte-identical
    across every config: a faster-but-different cover is a failure.
    """
    universal = datasets["musicbrainz"]
    universal.invalidate_caches()
    config = f"{kernel}-{fdtree_engine}"

    cover = benchmark.pedantic(
        lambda: HyFD().discover(universal), rounds=1, iterations=1
    )
    _TIMINGS.setdefault("hyfd_discovery", {})[config] = (
        benchmark.stats.stats.min
    )
    _COVERS[config] = sorted((fd.lhs, fd.rhs) for fd in cover)
    assert cover, "MusicBrainz universal relation must yield FDs"
    for other, other_cover in _COVERS.items():
        assert other_cover == _COVERS[config], (
            f"FD cover differs between configs {other} and {config}"
        )


def test_normalize_musicbrainz_universal(benchmark, datasets, discovery):
    universal = datasets["musicbrainz"]
    fds = discovery.fds("musicbrainz")
    normalizer = Normalizer(
        algorithm=PrecomputedFDs({universal.name: fds})
    )
    result = benchmark.pedantic(
        normalizer.run, args=(universal,), rounds=1, iterations=1
    )
    _TIMINGS.setdefault("normalize", {})["auto"] = benchmark.stats.stats.min

    report = evaluate_schema_recovery(result.schema, MUSICBRAINZ_GOLD)
    # the root relation (kept name) is the fact-table-like top relation
    top = result.instances[universal.name]
    lines = [
        "Figure 4 (scaled): BCNF normalization of denormalized MusicBrainz",
        "=" * 64,
        schema_tree(result.schema),
        "",
        report.to_str(),
        "",
        f"values: {result.original_values} -> {result.total_values}",
        f"decompositions: {len(result.steps)}",
        f"top-level (fact-table-like) relation: {top.name} "
        f"({top.arity} attrs, {top.num_rows} rows)",
    ]
    acn_match = report.relation_matches.get("artist_credit_name", ("", 1.0))
    lines.append(
        f"artist_credit_name best match: J={acn_match[1]:.2f} "
        "(the paper reports exactly this relation as not reconstructed)"
    )
    _REPORT.append("\n".join(lines))

    # Shape assertions.
    assert report.pair_recall > 0.75
    assert report.pair_precision > 0.75
    assert len(report.perfectly_recovered) >= 7
    rebuilt = result.reconstruct(universal.name)
    assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())
