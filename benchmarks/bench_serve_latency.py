"""Daemon latency and multi-tenant throughput (``repro serve``).

The daemon's pitch is the warm path: a session's encoded columns, PLI
caches, and maintained covers stay resident, so everything after the
initial upload is either O(Δ) maintenance or a pure lookup.  This
benchmark quantifies that against a real server on a real socket:

* **cold** — ``POST /v1/sessions``: CSV upload + encode + governed
  discovery + normalization (what every request would cost without
  sessions);
* **warm** — ``GET .../ddl`` and ``POST .../normalize`` on the live
  session: serialization only, the covers are already maintained;
* **batch** — ``POST .../batch``: incremental maintenance of one
  small append;
* **throughput** — 1 / 4 / 16 tenants hammering their own sessions
  concurrently with mixed batch+read traffic, measuring aggregate
  requests/second through the per-tenant-fair compute gate.

**Gate:** the warm read path must be ≥5x faster than the cold create
path — below that the session cache is not earning its memory.  The
table persists to ``benchmarks/results/serve_latency.txt`` and the
machine-readable document to ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import csv
import io
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from _util import emit, emit_json
from repro.evaluation.reporting import format_table
from repro.server import ReproClient, ReproServer, ServerConfig
from repro.verification.planted import plant_instance

#: planted base table: mid-sized, enough for discovery to be visible
_COLUMNS = 7
_ROWS = 1_500
_COLD_ROUNDS = 5
_WARM_ROUNDS = 40
_BATCH_ROUNDS = 15
_TENANT_COUNTS = [1, 4, 16]
_REQUESTS_PER_TENANT = 6

#: the gate: warm reads must beat cold creates by at least this factor
WARM_SPEEDUP_GATE = 5.0

_RESULTS: dict[str, object] = {}


def _csv_bytes() -> bytes:
    planted = plant_instance(
        7321, num_columns=_COLUMNS, num_rows=_ROWS, derived_rate=0.6
    )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(planted.instance.columns)
    for row in planted.instance.iter_rows():
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue().encode("utf-8")


def _batch_payload(index: int) -> dict:
    row = [f"bench{index}-{col}" for col in range(_COLUMNS)]
    return {"inserts": [row], "deletes": []}


class _ServerThread:
    """The daemon on a real TCP socket, driven from a thread."""

    def __init__(self):
        self.server: ReproServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = ReproServer(ServerConfig(port=0, max_sessions=64))
            self.loop = asyncio.get_running_loop()
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.run_until_shutdown(ready))
            await ready.wait()
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30)
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=30)

    def client(self, tenant: str) -> ReproClient:
        return ReproClient(
            "127.0.0.1", self.server.bound_port, tenant=tenant
        )


@pytest.fixture(scope="module", autouse=True)
def _serve_report(request):
    yield
    if not _RESULTS:
        return
    latency = _RESULTS.get("latency", {})
    rows = [
        [path, f"{stats['median_ms']:.2f}", f"{stats['mean_ms']:.2f}", stats["rounds"]]
        for path, stats in latency.items()
    ]
    table = format_table(
        ["path", "median (ms)", "mean (ms)", "rounds"],
        rows,
        title=(
            f"repro serve latency ({_COLUMNS}-col x {_ROWS}-row planted "
            f"table; warm/cold = "
            f"{_RESULTS.get('warm_speedup', 0):.1f}x, gate >= "
            f"{WARM_SPEEDUP_GATE:.0f}x)"
        ),
    )
    lines = [table, ""]
    for entry in _RESULTS.get("throughput", []):
        lines.append(
            f"  {entry['tenants']:>2} tenant(s): "
            f"{entry['requests_per_second']:.1f} req/s "
            f"({entry['requests']} mixed batch+read requests in "
            f"{entry['seconds']:.2f}s)"
        )
    emit("\n".join(lines), request, filename="serve_latency")
    emit_json("serve", _RESULTS)


def _time_ms(fn) -> float:
    started = time.perf_counter()
    fn()
    return (time.perf_counter() - started) * 1000.0


def _stats(samples: list[float]) -> dict:
    return {
        "median_ms": statistics.median(samples),
        "mean_ms": statistics.fmean(samples),
        "rounds": len(samples),
    }


def test_cold_vs_warm_latency(benchmark):
    csv_bytes = _csv_bytes()

    def run():
        out: dict[str, dict] = {}
        with _ServerThread() as harness:
            client = harness.client("bench")
            cold = [
                _time_ms(
                    lambda i=i: client.create_session(
                        csv_bytes, name="planted", session=f"cold{i}"
                    )
                )
                for i in range(_COLD_ROUNDS)
            ]
            out["create (cold)"] = _stats(cold)

            warm_ddl = [
                _time_ms(lambda: client.ddl("cold0"))
                for _ in range(_WARM_ROUNDS)
            ]
            out["ddl (warm)"] = _stats(warm_ddl)

            warm_norm = [
                _time_ms(lambda: client.normalize("cold0"))
                for _ in range(_WARM_ROUNDS)
            ]
            out["normalize (warm)"] = _stats(warm_norm)

            batches = [
                _time_ms(
                    lambda i=i: client.apply_batch(
                        "cold0", _batch_payload(i)
                    )
                )
                for i in range(_BATCH_ROUNDS)
            ]
            out["batch (incremental)"] = _stats(batches)
        return out

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["latency"] = latency
    speedup = (
        latency["create (cold)"]["median_ms"]
        / max(latency["ddl (warm)"]["median_ms"], 1e-6)
    )
    _RESULTS["warm_speedup"] = speedup
    _RESULTS["gate"] = {
        "warm_speedup_min": WARM_SPEEDUP_GATE,
        "measured": speedup,
    }
    assert speedup >= WARM_SPEEDUP_GATE, (
        f"warm DDL reads are only {speedup:.1f}x faster than cold "
        f"creates (gate {WARM_SPEEDUP_GATE}x) — the session cache is "
        "not paying for itself"
    )


def test_multi_tenant_throughput(benchmark):
    csv_bytes = _csv_bytes()

    def _drive_tenant(harness, tenant: str) -> int:
        client = harness.client(tenant)
        client.create_session(csv_bytes, name="planted", session="s")
        done = 0
        for index in range(_REQUESTS_PER_TENANT):
            if index % 3 == 0:
                client.apply_batch("s", _batch_payload(index))
            elif index % 3 == 1:
                client.ddl("s")
            else:
                client.normalize("s")
            done += 1
        return done

    def run():
        series = []
        for tenants in _TENANT_COUNTS:
            with _ServerThread() as harness:
                names = [f"tenant{i}" for i in range(tenants)]
                started = time.perf_counter()
                with ThreadPoolExecutor(max_workers=tenants) as pool:
                    counts = list(
                        pool.map(
                            lambda name: _drive_tenant(harness, name), names
                        )
                    )
                elapsed = time.perf_counter() - started
            requests = sum(counts) + tenants  # + the create per tenant
            series.append(
                {
                    "tenants": tenants,
                    "requests": requests,
                    "seconds": elapsed,
                    "requests_per_second": requests / max(elapsed, 1e-9),
                }
            )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["throughput"] = series
    _RESULTS["workload"] = {
        "columns": _COLUMNS,
        "rows": _ROWS,
        "requests_per_tenant": _REQUESTS_PER_TENANT,
    }
    # Sanity: every tenant completed its full request quota.
    for entry in series:
        expected = entry["tenants"] * (_REQUESTS_PER_TENANT + 1)
        assert entry["requests"] == expected
