"""Out-of-core columnar store: peak RSS + wall-clock vs in-memory.

The PR's promise is that discovery over a dataset whose encoded
footprint exceeds the memory budget completes by *spilling* encoded
columns to mmap-backed page files, with the encoder's in-heap staging
bounded by O(chunk) instead of O(rows) — and produces byte-identical
DDL.  This benchmark measures that directly:

* three synthetic datasets sized at **1x / 4x / 16x** of a notional
  256 KiB encoded-column budget (8 columns, int32 codes);
* each dataset normalized twice in fresh subprocesses — once with the
  default in-memory tier, once under ``REPRO_STORAGE=auto`` with the
  spill threshold pinned to a quarter of the budget (the same wiring
  ``--memory-limit`` installs) and chunked ingestion — recording each
  child's own wall-clock and ``ru_maxrss``;
* the DDL of every pair asserted byte-identical (the acceptance
  criterion, not a statistic);
* the spill child's ``peak_buffered_cells`` asserted O(chunk): at most
  one flush page plus one input chunk per column, independent of the
  dataset's row count.

The table persists to ``benchmarks/results/oocore.txt`` and the
machine-readable document to ``benchmarks/results/BENCH_oocore.json``.
Absolute RSS numbers include the interpreter (~10-20 MB baseline), so
the interesting signal is how the *memory* tier's footprint grows with
scale while the *spill* tier's staging stays flat.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from _util import emit, emit_json
from repro.evaluation.reporting import format_table
from repro.structures.storage import PAGE_ROWS

#: notional encoded-column budget the scales are multiples of
BUDGET_BYTES = 256 * 1024

ARITY = 8
CHUNK_ROWS = 1024

#: scale factor → rows such that 4 * rows * ARITY = factor * budget
SCALES = {factor: factor * BUDGET_BYTES // (4 * ARITY) for factor in (1, 4, 16)}

_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: the child: normalize, then report its own wall/RSS/staging footprint
_CHILD = """\
import json, resource, sys, time
from repro.cli import main
from repro.structures import storage

csv_path, ddl_path, out_path = sys.argv[1:4]
started = time.perf_counter()
status = main([csv_path, "--ddl", ddl_path])
wall = time.perf_counter() - started
json.dump(
    {
        "status": status,
        "wall_s": wall,
        "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "peak_buffered_cells": storage.peak_buffered_cells(),
        "counters": storage.counters_snapshot(),
    },
    open(out_path, "w"),
)
"""


def _write_dataset(path: Path, rows: int) -> None:
    """A relation with planted FD structure so discovery has work to do."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(f"c{i}" for i in range(ARITY)) + "\n")
        for i in range(rows):
            region = i % 19
            handle.write(
                f"{i},{region},r{region},{i % 257},{(i * 7) % 101},"
                f"{i % 13},{(i % 13) * 3},{i % 5}\n"
            )


def _run_child(csv_path: Path, ddl_path: Path, policy: str) -> dict:
    env = dict(os.environ, PYTHONPATH=_SRC)
    env.pop("REPRO_STORAGE", None)
    if policy == "spill":
        # auto + a threshold of budget/4: the tier decision itself is
        # budget-driven, exactly as `--memory-limit` wires it.
        env["REPRO_STORAGE"] = "auto"
        env["REPRO_SPILL_THRESHOLD"] = str(BUDGET_BYTES // 4)
        env["REPRO_CHUNK_ROWS"] = str(CHUNK_ROWS)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as out:
        out_path = Path(out.name)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(csv_path), str(ddl_path), str(out_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        result = json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)
    assert result["status"] == 0
    return result


@pytest.mark.benchmark(group="oocore")
def test_oocore_scaling(benchmark, tmp_path):
    rows_by_scale = []

    def run():
        runs = {}
        for factor, rows in sorted(SCALES.items()):
            csv_path = tmp_path / f"scale{factor}.csv"
            _write_dataset(csv_path, rows)
            ddl_mem = tmp_path / f"scale{factor}-mem.sql"
            ddl_spill = tmp_path / f"scale{factor}-spill.sql"
            mem = _run_child(csv_path, ddl_mem, "memory")
            spill = _run_child(csv_path, ddl_spill, "spill")

            # The acceptance criterion: covers/DDL byte-identical.
            assert ddl_mem.read_bytes() == ddl_spill.read_bytes()
            # O(chunk) staging: one flush page + one chunk per column,
            # regardless of how many rows streamed through.
            ceiling = (PAGE_ROWS + CHUNK_ROWS) * ARITY
            assert 0 < spill["peak_buffered_cells"] <= ceiling
            assert spill["counters"]["spill_columns"] >= ARITY
            assert (
                spill["counters"]["spill_cells_written"] >= rows * ARITY
            )

            runs[factor] = {
                "rows": rows,
                "encoded_bytes": 4 * rows * ARITY,
                "budget_multiple": factor,
                "memory": {
                    "wall_s": round(mem["wall_s"], 4),
                    "maxrss_kb": mem["maxrss_kb"],
                },
                "spill": {
                    "wall_s": round(spill["wall_s"], 4),
                    "maxrss_kb": spill["maxrss_kb"],
                    "peak_buffered_cells": spill["peak_buffered_cells"],
                    "pages_written": spill["counters"]["spill_pages_written"],
                },
                "ddl_identical": True,
            }
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        [
            "scale",
            "rows",
            "mem wall (s)",
            "mem RSS (MB)",
            "spill wall (s)",
            "spill RSS (MB)",
            "staged cells",
        ],
        [
            [
                f"{factor}x budget",
                str(run["rows"]),
                f"{run['memory']['wall_s']:.2f}",
                f"{run['memory']['maxrss_kb'] / 1024:.1f}",
                f"{run['spill']['wall_s']:.2f}",
                f"{run['spill']['maxrss_kb'] / 1024:.1f}",
                str(run["spill"]["peak_buffered_cells"]),
            ]
            for factor, run in sorted(runs.items())
        ],
    )
    emit(
        "out-of-core scaling (budget = 256 KiB of encoded columns; "
        "DDL byte-identical at every scale):\n" + table,
        filename="oocore",
    )
    emit_json(
        "oocore",
        {
            "budget_bytes": BUDGET_BYTES,
            "arity": ARITY,
            "chunk_rows": CHUNK_ROWS,
            "page_rows": PAGE_ROWS,
            "runs": {str(factor): run for factor, run in runs.items()},
        },
    )
