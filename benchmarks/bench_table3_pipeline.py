"""Experiment E1/E6/E9 — the paper's Table 3.

For each of the six datasets, measure the pipeline components the
paper reports: FD discovery, closure calculation (improved and
optimized), key derivation, and violating-FD identification — plus the
dataset statistics (#FDs, #FD-keys, average RHS size before/after the
closure, §8.2).

The datasets are the DESIGN.md §3 stand-ins, so compare *shapes*, not
absolute milliseconds:

* key derivation and violation detection are orders of magnitude
  faster than discovery and closure (paper: "usually finish in less
  than a second"),
* optimized beats improved closure everywhere, and the gap widens with
  the number of RHS extensions performed,
* the FD-key counts follow the paper's pattern (Plista 1, Horse small,
  Amalgam1 large for its size, Flight largest).
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.core.closure import improved_closure, optimized_closure
from repro.core.key_derivation import derive_keys
from repro.core.violations import find_violating_fds
from repro.evaluation.reporting import format_table

DATASETS = ["horse", "plista", "amalgam1", "flight", "musicbrainz", "tpch"]

_ROWS: dict[str, dict[str, object]] = {}


def _row(name):
    return _ROWS.setdefault(name, {})


@pytest.fixture(scope="module", autouse=True)
def _table3_report(request):
    yield
    if not _ROWS:
        return
    headers = [
        "Name", "Attr.", "Records", "FDs", "FD-Keys",
        "FD Disc. (s)", "Closure_impr (s)", "Closure_opt (s)",
        "Key Der. (s)", "Viol. Iden. (s)", "avg |RHS| pre->post",
    ]
    rows = []
    for name in DATASETS:
        data = _ROWS.get(name, {})
        if not data:
            continue
        rows.append([
            name,
            data.get("attrs", "-"),
            data.get("records", "-"),
            data.get("fds", "-"),
            data.get("fd_keys", "-"),
            f"{data['discovery']:.3f}" if "discovery" in data else "-",
            f"{data['closure_impr']:.3f}" if "closure_impr" in data else "-",
            f"{data['closure_opt']:.3f}" if "closure_opt" in data else "-",
            f"{data['key_der']:.4f}" if "key_der" in data else "-",
            f"{data['viol']:.4f}" if "viol" in data else "-",
            data.get("rhs", "-"),
        ])
    emit(
        format_table(headers, rows, title="Table 3 (scaled reproduction)"),
        request,
        filename="table3_pipeline",
    )


@pytest.mark.parametrize("name", DATASETS)
def test_fd_discovery(benchmark, name, datasets, discovery):
    from repro.discovery.hyfd import HyFD

    instance = datasets[name]
    # A fresh discovery run — the session cache may already be warm
    # from other benchmark modules, which would corrupt the timing.
    fds = benchmark.pedantic(
        HyFD().discover, args=(instance,), rounds=1, iterations=1
    )
    row = _row(name)
    row["attrs"] = instance.arity
    row["records"] = instance.num_rows
    row["fds"] = fds.count_single_rhs()
    row["discovery"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("name", DATASETS)
def test_closure_improved(benchmark, name, discovery):
    fds = discovery.fds(name)
    benchmark.pedantic(
        improved_closure, args=(fds.copy(),), rounds=1, iterations=1
    )
    _row(name)["closure_impr"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("name", DATASETS)
def test_closure_optimized(benchmark, name, discovery):
    fds = discovery.fds(name)
    extended = benchmark.pedantic(
        optimized_closure, args=(fds.copy(),), rounds=1, iterations=1
    )
    row = _row(name)
    row["closure_opt"] = benchmark.stats.stats.mean
    row["rhs"] = (
        f"{fds.average_rhs_size():.1f} -> {extended.average_rhs_size():.1f}"
    )


@pytest.mark.parametrize("name", DATASETS)
def test_key_derivation(benchmark, name, datasets, discovery):
    extended = discovery.extended(name)
    full = datasets[name].full_mask()
    keys = benchmark.pedantic(
        derive_keys, args=(extended, full), rounds=3, iterations=1
    )
    row = _row(name)
    row["fd_keys"] = len(keys)
    row["key_der"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("name", DATASETS)
def test_violation_identification(benchmark, name, datasets, discovery):
    extended = discovery.extended(name)
    instance = datasets[name]
    keys = derive_keys(extended, instance.full_mask())
    null_mask = 0
    for index in range(instance.arity):
        if any(v is None for v in instance.columns_data[index]):
            null_mask |= 1 << index
    benchmark.pedantic(
        find_violating_fds,
        args=(extended, keys),
        kwargs={"null_mask": null_mask},
        rounds=3,
        iterations=1,
    )
    _row(name)["viol"] = benchmark.stats.stats.mean
