"""Incremental maintenance vs. full re-discovery under append streams.

The incremental engine's pitch: when a batch arrives, re-running the
full pipeline (FD discovery included) from scratch costs what the
paper's Table 3 says discovery costs — by far the dominant share — and
that cost is paid *per batch*.  The engine instead maintains the
covers in O(new pairs) and re-runs only the pipeline tail.

This benchmark drives an append-heavy stream of small batches into a
mid-sized planted table and, as the batch count grows, compares the
cumulative wall-clock of

* ``incremental`` — one :class:`IncrementalNormalizer` absorbing every
  batch via ``apply_batch`` (cover maintenance + pipeline tail), and
* ``full re-discovery`` — a from-scratch ``normalize()`` (HyFD
  included) of the updated instance after every batch, which is what a
  batch-oblivious deployment would run.

Expected shape: the curves diverge with the batch count — the
incremental cumulative cost grows roughly linearly in the number of
*new* tuples, the from-scratch cost re-pays the whole (growing)
instance every batch.  The table persists to
``benchmarks/results/incremental_vs_full.txt``.
"""

from __future__ import annotations

import time

import pytest

from _util import emit
from repro.core.normalize import Normalizer
from repro.core.selection import AutoDecider
from repro.evaluation.reporting import format_table
from repro.incremental import IncrementalNormalizer
from repro.model.instance import RelationInstance
from repro.verification.incremental import generate_batch_stream
from repro.verification.planted import plant_instance

#: cumulative batch counts at which both series are sampled
CHECKPOINTS = [1, 2, 4, 8, 16, 32]
_ROWS_PER_BATCH = "1-4"

_SERIES: dict[int, dict[str, float]] = {}


def _base():
    planted = plant_instance(
        1234, num_columns=7, num_rows=2_000, derived_rate=0.6
    )
    return planted


def _stream(planted, count):
    _, batches = generate_batch_stream(
        1234, planted.instance, planted.key_mask, count, kind="insert-only"
    )
    return batches


def _scratch_normalizer() -> Normalizer:
    return Normalizer(
        algorithm="hyfd", decider=AutoDecider(), degrade=False
    )


@pytest.fixture(scope="module", autouse=True)
def _incremental_report(request):
    yield
    if not _SERIES:
        return
    headers = [
        "batches",
        "incremental cum. (s)",
        "full re-discovery cum. (s)",
        "speedup",
    ]
    rows = []
    for count in sorted(_SERIES):
        data = _SERIES[count]
        if "incremental" in data and "scratch" in data:
            speedup = data["scratch"] / max(data["incremental"], 1e-9)
            rows.append(
                [
                    count,
                    f"{data['incremental']:.3f}",
                    f"{data['scratch']:.3f}",
                    f"{speedup:.1f}x",
                ]
            )
    emit(
        format_table(
            headers,
            rows,
            title=(
                "Incremental maintenance vs. full re-discovery, "
                f"append-heavy stream ({_ROWS_PER_BATCH} rows/batch, "
                "2k-row base table)"
            ),
        ),
        request,
        filename="incremental_vs_full",
    )


def test_incremental_cumulative(benchmark):
    planted = _base()
    batches = _stream(planted, max(CHECKPOINTS))

    def run():
        engine = IncrementalNormalizer(
            RelationInstance(
                planted.instance.relation,
                [list(c) for c in planted.instance.columns_data],
            )
        )
        marks = {}
        started = time.perf_counter()
        for index, batch in enumerate(batches, start=1):
            engine.apply_batch(batch)
            if index in CHECKPOINTS:
                marks[index] = time.perf_counter() - started
        return marks

    marks = benchmark.pedantic(run, rounds=1, iterations=1)
    for count, seconds in marks.items():
        _SERIES.setdefault(count, {})["incremental"] = seconds


def test_full_rediscovery_cumulative(benchmark):
    planted = _base()
    batches = _stream(planted, max(CHECKPOINTS))

    def run():
        columns_data = [list(c) for c in planted.instance.columns_data]
        marks = {}
        started = time.perf_counter()
        for index, batch in enumerate(batches, start=1):
            for row in batch.inserts:
                for col, value in enumerate(row):
                    columns_data[col].append(value)
            instance = RelationInstance(
                planted.instance.relation,
                [list(c) for c in columns_data],
            )
            _scratch_normalizer().run(instance)
            if index in CHECKPOINTS:
                marks[index] = time.perf_counter() - started
        return marks

    marks = benchmark.pedantic(run, rounds=1, iterations=1)
    for count, seconds in marks.items():
        _SERIES.setdefault(count, {})["scratch"] = seconds
