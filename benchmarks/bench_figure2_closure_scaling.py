"""Experiment E2 — the paper's Figure 2.

Closure runtime as a function of the number of input FDs, improved vs.
optimized, on random samples of the MusicBrainz-like FD set with the
attribute count held constant (the paper samples its 12M MusicBrainz
FDs the same way).

Expected shape (paper §8.2): both algorithms scale almost linearly in
the number of FDs, and the optimized algorithm is consistently faster
— 4× to 16× in the paper's range, growing with the sample size.
"""

from __future__ import annotations

import random

import pytest

from _util import emit
from repro.core.closure import improved_closure, optimized_closure
from repro.evaluation.reporting import format_table
from repro.model.fd import FDSet

FRACTIONS = [0.125, 0.25, 0.5, 1.0]

_SERIES: dict[int, dict[str, float]] = {}


def _sample(fds: FDSet, fraction: float, seed: int = 13) -> FDSet:
    pairs = list(fds.items())
    count = max(1, int(len(pairs) * fraction))
    rng = random.Random(seed)
    chosen = rng.sample(pairs, count) if count < len(pairs) else pairs
    sampled = FDSet(fds.num_attributes)
    for lhs, rhs in chosen:
        sampled.add_masks(lhs, rhs)
    return sampled


@pytest.fixture(scope="module", autouse=True)
def _figure2_report(request):
    yield
    if not _SERIES:
        return
    headers = ["#FDs (aggregated)", "improved (s)", "optimized (s)", "speedup"]
    rows = []
    for count in sorted(_SERIES):
        data = _SERIES[count]
        if "improved" in data and "optimized" in data:
            speedup = data["improved"] / max(data["optimized"], 1e-9)
            rows.append([
                count,
                f"{data['improved']:.4f}",
                f"{data['optimized']:.4f}",
                f"{speedup:.1f}x",
            ])
    emit(
        format_table(
            headers,
            rows,
            title="Figure 2 (scaled): closure runtime vs. number of input FDs",
        ),
        request,
        filename="figure2_closure_scaling",
    )


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_improved_closure_scaling(benchmark, fraction, discovery):
    sampled = _sample(discovery.fds("musicbrainz"), fraction)
    benchmark.pedantic(
        improved_closure, args=(sampled.copy(),), rounds=3, iterations=1
    )
    _SERIES.setdefault(len(sampled), {})["improved"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_optimized_closure_scaling(benchmark, fraction, discovery):
    sampled = _sample(discovery.fds("musicbrainz"), fraction)
    benchmark.pedantic(
        optimized_closure, args=(sampled.copy(),), rounds=3, iterations=1
    )
    _SERIES.setdefault(len(sampled), {})["optimized"] = benchmark.stats.stats.mean
