"""Micro-benchmarks for the columnar partition engine (PR: PLI hot path).

Three hot-path primitives, each with the workload shape that dominates
real discovery runs:

* ``StrippedPartition.intersect`` — the stripped product on dense
  low-cardinality columns (every row in a non-singleton cluster),
* multi-RHS validation — one LHS node with a 10-attribute RHS fan-out
  whose FDs all *hold*, forcing full partition sweeps (the expensive
  case HyFD hits on every valid candidate); measured once through the
  single-pass ``find_violations`` and once through the historical
  per-attribute ``find_violating_pair`` loop for comparison,
* ``PLICache`` miss storm on a wide (24-attribute) table — 300 random
  attribute-set probes, the popcount-index satellite's workload.

The table is persisted to ``benchmarks/results/partition_engine.txt``;
``benchmarks/results/PR1_perf_comparison.txt`` records the seed
baseline of the same workloads.
"""

from __future__ import annotations

import random

import pytest

from _util import emit
from repro.datagen.random_tables import random_instance
from repro.evaluation.reporting import format_table
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.structures.partitions import PLICache, StrippedPartition

_ROWS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _engine_report(request):
    yield
    if not _ROWS:
        return
    rows = [[name, f"{seconds * 1e3:.2f}"] for name, seconds in _ROWS.items()]
    emit(
        format_table(
            ["operation", "time (ms)"],
            rows,
            title="Partition engine micro-benchmarks",
        ),
        request,
        filename="partition_engine",
    )


@pytest.fixture(scope="module")
def dense_partitions():
    instance = random_instance(7, 4, 50_000, domain_size=40)
    return (
        StrippedPartition.from_column(instance.columns_data[0]),
        StrippedPartition.from_column(instance.columns_data[1]),
    )


@pytest.fixture(scope="module")
def valid_fd_fixture():
    """12 columns, 20k rows: 10 RHS columns all functions of the LHS pair."""
    rng = random.Random(5)
    n = 20_000
    lhs_a = [rng.randrange(40) for _ in range(n)]
    lhs_b = [rng.randrange(40) for _ in range(n)]
    columns = [lhs_a, lhs_b]
    for k in range(10):
        columns.append([(a * 41 + b + k) % 97 for a, b in zip(lhs_a, lhs_b)])
    instance = RelationInstance(
        Relation("valid", tuple(f"c{i}" for i in range(12))),
        [[str(v) for v in column] for column in columns],
    )
    cache = PLICache(instance)
    partition = cache.get(0b11)
    attrs = list(range(2, 12))
    probes = [cache.probe(a) for a in attrs]
    return partition, attrs, probes


def test_intersect_dense(benchmark, dense_partitions):
    left, right = dense_partitions
    result = benchmark.pedantic(
        left.intersect, args=(right,), rounds=5, iterations=3
    )
    assert result.num_rows == 50_000
    _ROWS["intersect (50k rows, dense)"] = benchmark.stats.stats.min


def test_multi_rhs_single_pass(benchmark, valid_fd_fixture):
    partition, attrs, probes = valid_fd_fixture
    violations = benchmark.pedantic(
        partition.find_violations, args=(attrs, probes), rounds=5, iterations=3
    )
    assert violations == {}  # all 10 FDs hold: full sweeps were forced
    _ROWS["validate 10 RHS (single-pass)"] = benchmark.stats.stats.min


def test_multi_rhs_per_attribute_loop(benchmark, valid_fd_fixture):
    """The historical shape: one full partition scan per RHS attribute."""
    partition, attrs, probes = valid_fd_fixture

    def per_attribute():
        out = {}
        for attr, probe in zip(attrs, probes):
            pair = partition.find_violating_pair(probe)
            if pair is not None:
                out[attr] = pair
        return out

    violations = benchmark.pedantic(per_attribute, rounds=5, iterations=3)
    assert violations == {}
    _ROWS["validate 10 RHS (per-RHS loop)"] = benchmark.stats.stats.min


def test_plicache_wide_table_storm(benchmark):
    """300 random multi-attribute probes against a 24-attribute table."""
    instance = random_instance(3, 24, 2_000, domain_size=4)
    rng = random.Random(0)
    masks = [rng.getrandbits(24) for _ in range(300)]

    def storm():
        cache = PLICache(instance)
        for mask in masks:
            cache.get(mask)
        return cache

    cache = benchmark.pedantic(storm, rounds=3, iterations=1)
    assert cache.cache_size() > 24
    _ROWS["PLICache 300-mask storm (24 attrs)"] = benchmark.stats.stats.min
