"""Micro-benchmarks for the columnar partition engine (PLI hot path).

Every workload runs once per available kernel backend (the ``kernel``
fixture; restrict with ``--kernel python|numpy``):

* ``StrippedPartition.intersect`` — the stripped product on dense
  low-cardinality columns (every row in a non-singleton cluster), at
  the historical 50k-row size and at the **large preset** (200k rows)
  the ≥5x numpy-speedup acceptance gate is measured on,
* multi-RHS validation — one LHS node with a 10-attribute RHS fan-out
  whose FDs all *hold*, forcing full partition sweeps (the expensive
  case HyFD hits on every valid candidate); measured once through the
  single-pass ``find_violations`` and once through the historical
  per-attribute ``find_violating_pair`` loop, at 20k and 100k rows,
* batched agree-set extraction — 100k record pairs against 12 columns
  (the HyFD sampler's window shape, uint64 bitset packing on numpy),
* ``PLICache`` miss storm on a wide (24-attribute) table — 300 random
  attribute-set probes, the popcount-index satellite's workload.

The table is persisted to ``benchmarks/results/partition_engine.txt``
and machine-readable timings (plus numpy-vs-python speedups) to
``benchmarks/results/BENCH_partition_engine.json``.
"""

from __future__ import annotations

import random

import pytest

from _util import emit, emit_json
from conftest import BACKENDS
from repro.datagen.random_tables import random_instance
from repro.evaluation.reporting import format_table
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.structures.partitions import PLICache, StrippedPartition

#: (operation, backend) → seconds (best of the measured rounds)
_ROWS: dict[tuple[str, str], float] = {}

#: operations whose numpy time gates the PR's ≥5x acceptance criterion —
#: the validation sweep and agree-set extraction dominate HyFD runtime;
#: the intersect is reported but ungated (its python loop is already a
#: tight dict groupby, so the sort-based numpy path wins only ~3x)
LARGE_PRESET = (
    "validate 10 RHS (100k rows, single-pass)",
    "agree sets (100k pairs, 12 cols)",
)

SPEEDUP_GATE = 5.0

DATASET_SIZES = {
    "intersect (50k rows, dense)": {"rows": 50_000, "columns": 2},
    "intersect (200k rows, dense)": {"rows": 200_000, "columns": 2},
    "validate 10 RHS (single-pass)": {"rows": 20_000, "columns": 12},
    "validate 10 RHS (per-RHS loop)": {"rows": 20_000, "columns": 12},
    "validate 10 RHS (100k rows, single-pass)": {"rows": 100_000, "columns": 12},
    "agree sets (100k pairs, 12 cols)": {"rows": 100_000, "columns": 12},
    "PLICache 300-mask storm (24 attrs)": {"rows": 2_000, "columns": 24},
}


def _speedups() -> dict[str, float]:
    out = {}
    for (operation, backend), seconds in _ROWS.items():
        if backend != "numpy":
            continue
        python_seconds = _ROWS.get((operation, "python"))
        if python_seconds and seconds:
            out[operation] = python_seconds / seconds
    return out


@pytest.fixture(scope="module", autouse=True)
def _engine_report(request):
    yield
    if not _ROWS:
        return
    speedups = _speedups()
    operations = list(dict.fromkeys(op for op, _ in _ROWS))
    table_rows = []
    for operation in operations:
        for backend in BACKENDS:
            seconds = _ROWS.get((operation, backend))
            if seconds is None:
                continue
            speedup = speedups.get(operation) if backend == "numpy" else None
            table_rows.append(
                [
                    operation,
                    backend,
                    f"{seconds * 1e3:.2f}",
                    f"{speedup:.1f}x" if speedup else "",
                ]
            )
    emit(
        format_table(
            ["operation", "kernel", "time (ms)", "speedup"],
            table_rows,
            title="Partition engine micro-benchmarks",
        ),
        request,
        filename="partition_engine",
    )
    emit_json(
        "partition_engine",
        {
            "workers": 1,
            "backends": [
                backend
                for backend in BACKENDS
                if any(key[1] == backend for key in _ROWS)
            ],
            "dataset_sizes": DATASET_SIZES,
            "timings_seconds": {
                operation: {
                    backend: _ROWS[(operation, backend)]
                    for backend in BACKENDS
                    if (operation, backend) in _ROWS
                }
                for operation in operations
            },
            "speedups_numpy_over_python": speedups,
            "large_preset": {
                "operations": list(LARGE_PRESET),
                "required_speedup": SPEEDUP_GATE,
                "gate_passed": all(
                    speedups.get(op, 0.0) >= SPEEDUP_GATE
                    for op in LARGE_PRESET
                )
                if any(op in speedups for op in LARGE_PRESET)
                else None,
            },
        },
    )
    # Acceptance gate: ≥5x numpy over python on the large preset.  Only
    # evaluated when both backends were measured (no --kernel filter).
    for operation in LARGE_PRESET:
        speedup = speedups.get(operation)
        assert speedup is None or speedup >= SPEEDUP_GATE, (
            f"{operation}: numpy speedup {speedup:.1f}x < {SPEEDUP_GATE}x"
        )


@pytest.fixture(scope="module")
def dense_partitions():
    instance = random_instance(7, 4, 50_000, domain_size=40)
    return (
        StrippedPartition.from_column(instance.columns_data[0]),
        StrippedPartition.from_column(instance.columns_data[1]),
    )


@pytest.fixture(scope="module")
def dense_partitions_large():
    instance = random_instance(8, 4, 200_000, domain_size=50)
    return (
        StrippedPartition.from_column(instance.columns_data[0]),
        StrippedPartition.from_column(instance.columns_data[1]),
    )


def _valid_fd_data(seed: int, num_rows: int):
    """12 columns, ``num_rows`` rows: 10 RHS columns that are all
    functions of the LHS pair, so every validation sweep runs to the
    end (the expensive case)."""
    rng = random.Random(seed)
    lhs_a = [rng.randrange(40) for _ in range(num_rows)]
    lhs_b = [rng.randrange(40) for _ in range(num_rows)]
    columns = [lhs_a, lhs_b]
    for k in range(10):
        columns.append([(a * 41 + b + k) % 97 for a, b in zip(lhs_a, lhs_b)])
    instance = RelationInstance(
        Relation("valid", tuple(f"c{i}" for i in range(12))),
        [[str(v) for v in column] for column in columns],
    )
    cache = PLICache(instance)
    partition = cache.get(0b11)
    attrs = list(range(2, 12))
    probes = [cache.probe(a) for a in attrs]
    return partition, attrs, probes, cache


@pytest.fixture(scope="module")
def valid_fd_fixture():
    return _valid_fd_data(5, 20_000)[:3]


@pytest.fixture(scope="module")
def valid_fd_fixture_large():
    return _valid_fd_data(6, 100_000)


def test_intersect_dense(benchmark, dense_partitions, kernel):
    left, right = dense_partitions
    result = benchmark.pedantic(
        left.intersect, args=(right,), rounds=5, iterations=3
    )
    assert result.num_rows == 50_000
    _ROWS[("intersect (50k rows, dense)", kernel)] = benchmark.stats.stats.min


def test_intersect_dense_large(benchmark, dense_partitions_large, kernel):
    left, right = dense_partitions_large
    result = benchmark.pedantic(
        left.intersect, args=(right,), rounds=3, iterations=1
    )
    assert result.num_rows == 200_000
    _ROWS[("intersect (200k rows, dense)", kernel)] = benchmark.stats.stats.min


def test_multi_rhs_single_pass(benchmark, valid_fd_fixture, kernel):
    partition, attrs, probes = valid_fd_fixture
    violations = benchmark.pedantic(
        partition.find_violations, args=(attrs, probes), rounds=5, iterations=3
    )
    assert violations == {}  # all 10 FDs hold: full sweeps were forced
    _ROWS[("validate 10 RHS (single-pass)", kernel)] = benchmark.stats.stats.min


def test_multi_rhs_per_attribute_loop(benchmark, valid_fd_fixture, kernel):
    """The historical shape: one full partition scan per RHS attribute."""
    partition, attrs, probes = valid_fd_fixture

    def per_attribute():
        out = {}
        for attr, probe in zip(attrs, probes):
            pair = partition.find_violating_pair(probe)
            if pair is not None:
                out[attr] = pair
        return out

    violations = benchmark.pedantic(per_attribute, rounds=5, iterations=3)
    assert violations == {}
    _ROWS[("validate 10 RHS (per-RHS loop)", kernel)] = benchmark.stats.stats.min


def test_multi_rhs_single_pass_large(benchmark, valid_fd_fixture_large, kernel):
    partition, attrs, probes, _ = valid_fd_fixture_large
    violations = benchmark.pedantic(
        partition.find_violations, args=(attrs, probes), rounds=3, iterations=1
    )
    assert violations == {}
    _ROWS[
        ("validate 10 RHS (100k rows, single-pass)", kernel)
    ] = benchmark.stats.stats.min


def test_agree_sets_batch(benchmark, valid_fd_fixture_large, kernel):
    """The sampler's window shape: bulk pairs through one kernel call."""
    _, _, _, cache = valid_fd_fixture_large
    encoding = cache.encoding
    rng = random.Random(9)
    n = encoding.num_rows
    lefts = [rng.randrange(n) for _ in range(100_000)]
    rights = [rng.randrange(n) for _ in range(100_000)]

    masks = benchmark.pedantic(
        encoding.agree_sets_batch, args=(lefts, rights), rounds=3, iterations=1
    )
    assert len(masks) == 100_000
    _ROWS[
        ("agree sets (100k pairs, 12 cols)", kernel)
    ] = benchmark.stats.stats.min


def test_plicache_wide_table_storm(benchmark, kernel):
    """300 random multi-attribute probes against a 24-attribute table."""
    instance = random_instance(3, 24, 2_000, domain_size=4)
    rng = random.Random(0)
    masks = [rng.getrandbits(24) for _ in range(300)]

    def storm():
        cache = PLICache(instance)
        for mask in masks:
            cache.get(mask)
        return cache

    cache = benchmark.pedantic(storm, rounds=3, iterations=1)
    assert cache.cache_size() > 24
    _ROWS[
        ("PLICache 300-mask storm (24 attrs)", kernel)
    ] = benchmark.stats.stats.min
