"""Shared dataset fixtures for the benchmark harness.

Everything expensive (dataset generation, FD discovery) is session-
scoped and cached, so a full ``pytest benchmarks/ --benchmark-only``
run performs each discovery exactly once and the individual benchmarks
measure exactly the component they name.

All datasets are the scaled-down stand-ins documented in DESIGN.md §3;
absolute times are therefore not comparable to the paper's Table 3,
but the *relative* behaviour (algorithm ordering, scaling curves,
speedup factors) is what each benchmark reports.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro import kernels
from repro.core.closure import optimized_closure
from repro.datagen.musicbrainz import denormalized_musicbrainz
from repro.datagen.profiles import (
    amalgam_like,
    flight_like,
    horse_like,
    plista_like,
)
from repro.datagen.tpch import denormalized_tpch
from repro.discovery.hyfd import HyFD


def pytest_addoption(parser):
    parser.addoption(
        "--kernel",
        default="auto",
        choices=("auto", "python", "numpy"),
        help="restrict kernel-parametrized benchmarks to one backend "
        "(auto = run every available backend and report speedups)",
    )


#: kernel backends available on this install, python (the oracle) first
BACKENDS = ["python"] + (["numpy"] if kernels.numpy_available() else [])


@pytest.fixture(params=BACKENDS)
def kernel(request):
    """Pin the kernel backend for one benchmark, honouring ``--kernel``."""
    chosen = request.config.getoption("--kernel")
    if chosen != "auto" and request.param != chosen:
        pytest.skip(f"--kernel {chosen} deselects the {request.param} backend")
    kernels.set_backend(request.param)
    yield request.param
    kernels.set_backend(None)


@pytest.fixture(scope="session")
def datasets():
    """The six Table 3 datasets (scaled; see DESIGN.md §3)."""
    return {
        "horse": horse_like(),
        "plista": plista_like(),
        "amalgam1": amalgam_like(),
        "flight": flight_like(),
        "musicbrainz": denormalized_musicbrainz(),
        "tpch": denormalized_tpch(),
    }


class DiscoveryCache:
    """Runs HyFD at most once per dataset, remembering the wall time."""

    def __init__(self, datasets):
        self._datasets = datasets
        self._fds = {}
        self.seconds = {}

    def fds(self, name):
        if name not in self._fds:
            started = time.perf_counter()
            self._fds[name] = HyFD().discover(self._datasets[name])
            self.seconds[name] = time.perf_counter() - started
        return self._fds[name]

    def extended(self, name):
        return optimized_closure(self.fds(name))

    def instance(self, name):
        return self._datasets[name]


@pytest.fixture(scope="session")
def discovery(datasets):
    return DiscoveryCache(datasets)
