"""Experiment E4 — the paper's Figure 3: normalizing denormalized TPC-H.

The universal relation (all eight tables joined, nation/region twice)
is normalized fully automatically; the recovered schema is compared to
the original snowflake.

Expected shape (paper §8.3):

* every original relation is identifiable in the result ("Normalize
  almost perfectly restored the original schema"),
* all selected keys and foreign keys are correct w.r.t. the original,
* two characteristic flaws: the fact-table side is decomposed "a bit
  too far", and the constant ``o_shippriority`` (constant in real
  TPC-H) is absorbed by whichever relation splits first — the paper
  observes it landing in REGION.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.core.normalize import Normalizer
from repro.datagen.tpch import TPCH_GOLD
from repro.discovery.precomputed import PrecomputedFDs
from repro.evaluation.metrics import evaluate_schema_recovery
from repro.evaluation.snowflake import schema_tree

_REPORT: list[str] = []


@pytest.fixture(scope="module", autouse=True)
def _figure3_report(request):
    yield
    for text in _REPORT:
        emit(text, request, filename="figure3_tpch_recovery")


def test_normalize_tpch_universal(benchmark, datasets, discovery):
    universal = datasets["tpch"]
    fds = discovery.fds("tpch")
    normalizer = Normalizer(
        algorithm=PrecomputedFDs({universal.name: fds})
    )
    result = benchmark.pedantic(
        normalizer.run, args=(universal,), rounds=1, iterations=1
    )

    report = evaluate_schema_recovery(result.schema, TPCH_GOLD)
    lines = [
        "Figure 3 (scaled): BCNF normalization of denormalized TPC-H",
        "=" * 60,
        schema_tree(result.schema),
        "",
        report.to_str(),
        "",
        f"values: {result.original_values} -> {result.total_values}",
        f"decompositions: {len(result.steps)}",
    ]
    shippriority_home = next(
        (
            instance.name
            for instance in result.instances.values()
            if "o_shippriority" in instance.columns
        ),
        "?",
    )
    lines.append(
        f"o_shippriority (constant) landed in: {shippriority_home} "
        "(the paper observes the same flaw: it lands in REGION)"
    )
    _REPORT.append("\n".join(lines))

    # Shape assertions — who wins, not exact numbers.
    assert report.pair_recall > 0.85
    assert report.pair_precision > 0.85
    assert len(report.perfectly_recovered) >= 6
    assert report.key_accuracy == 1.0
    rebuilt = result.reconstruct(universal.name)
    assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())
