"""Worker-pool scaling of the parallel execution layer.

Runs full-pipeline ``normalize()`` and standalone HyFD discovery on
the largest planted instance at 1/2/4/8 workers and reports the
speedup over the serial baseline, asserting byte-identical DDL and FD
covers at every worker count (the determinism contract is part of
what's measured — a fast-but-different parallel run is a failure).

The cost-model threshold is forced to zero so every shard really goes
through the pool: this benchmark measures the execution layer itself,
including shared-memory export/attach and merge overheads.  On a
single-CPU host the workers time-slice one core, so expect speedups
*below* 1.0x there — the recorded table is the honest overhead story;
real scaling needs real cores.  Results persist to
``benchmarks/results/parallel_scaling.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from _util import emit, emit_json
from repro import kernels
from repro.core.normalize import Normalizer
from repro.discovery.hyfd import HyFD
from repro.evaluation.reporting import format_table
from repro.io.ddl import schema_to_ddl
from repro.parallel import pool as pool_module
from repro.parallel import shutdown_pool
from repro.verification.planted import plant_instance

WORKER_COUNTS = [1, 2, 4, 8]

_SERIES: dict[str, dict[int, float]] = {}
_BASELINES: dict[str, object] = {}


def _instance():
    return plant_instance(
        99, num_columns=8, num_rows=4_000, derived_rate=0.6
    ).instance


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    monkeypatch.setattr(pool_module, "SERIAL_THRESHOLD", 0)
    yield
    shutdown_pool()


@pytest.fixture(scope="module", autouse=True)
def _scaling_report(request):
    yield
    if not _SERIES:
        return
    headers = ["workers"] + [f"{name} (s)" for name in _SERIES] + [
        f"{name} speedup" for name in _SERIES
    ]
    rows = []
    for workers in WORKER_COUNTS:
        row = [workers]
        for series in _SERIES.values():
            row.append(f"{series.get(workers, float('nan')):.3f}")
        for series in _SERIES.values():
            base = series.get(1)
            now = series.get(workers)
            if base and now:
                row.append(f"{base / now:.2f}x")
            else:
                row.append("-")
        rows.append(row)
    emit(
        format_table(
            headers,
            rows,
            title=(
                "Parallel scaling, 8-col/4k-row planted instance "
                f"({os.cpu_count()} CPU(s) on this host; identical "
                "output asserted at every worker count)"
            ),
        ),
        request,
        filename="parallel_scaling",
    )
    # One run measures one kernel backend (whatever REPRO_KERNEL / auto
    # resolves to); successive runs accumulate under "runs" in the JSON.
    backend = kernels.backend_name()
    emit_json(
        "parallel_scaling",
        {
            "kernel_backend": backend,
            "cpus": os.cpu_count(),
            "worker_counts": WORKER_COUNTS,
            "dataset_sizes": {"planted": {"rows": 4_000, "columns": 8}},
            "timings_seconds": {
                name: {str(w): t for w, t in series.items()}
                for name, series in _SERIES.items()
            },
            "speedups_over_serial": {
                name: {
                    str(w): series[1] / t
                    for w, t in series.items()
                    if series.get(1) and t
                }
                for name, series in _SERIES.items()
            },
        },
        key=backend,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_normalize_scaling(benchmark, workers):
    instance = _instance()

    def run():
        started = time.perf_counter()
        result = Normalizer(algorithm="hyfd", workers=workers).run(instance)
        return time.perf_counter() - started, schema_to_ddl(result.schema)

    seconds, ddl = benchmark.pedantic(run, rounds=1, iterations=1)
    _SERIES.setdefault("normalize", {})[workers] = seconds
    baseline = _BASELINES.setdefault("normalize", ddl)
    assert ddl == baseline, f"workers={workers} changed the DDL"


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_hyfd_scaling(benchmark, workers):
    instance = _instance()

    def run():
        started = time.perf_counter()
        cover = HyFD(workers=workers).discover(instance)
        return time.perf_counter() - started, list(cover.items())

    seconds, cover = benchmark.pedantic(run, rounds=1, iterations=1)
    _SERIES.setdefault("hyfd", {})[workers] = seconds
    baseline = _BASELINES.setdefault("hyfd", cover)
    assert cover == baseline, f"workers={workers} changed the FD cover"
    assert cover, "planted instance must yield a non-empty cover"
