"""Micro-benchmarks for the FD-tree lattice engine (induction hot path).

Every workload runs once per engine configuration — the recursive
``legacy`` trie, the level-indexed engine under the ``python`` kernel
backend, and (when installed) under the ``numpy`` uint64-mirror
backend:

* **generalization batch (wide lattice)** — the preset the PR's ≥5x
  acceptance gate is measured on: a 36-attribute lattice holding
  ~4.1k stored LHSs on levels 2 and 4, probed with 200 popcount-30
  generalization queries whose RHS attributes exist in the tree (so
  RHS-union bookkeeping cannot prune the walk) but that all miss
  (every stored LHS contains an attribute the queries exclude),
  forcing full sweeps with no early exit under either engine;
* **collect_violated sweep** — 100 wide agree sets against the same
  lattice (HyFD induction's per-pair violation scan);
* **any_violated screen** — 2 000 agree sets through the batched
  screening entry point (the ``apply_agree_sets`` pre-filter);
* **induction end-to-end** — ``build_positive_cover`` over 8 000
  sampled agree sets of a 12-attribute planted instance, with the
  resulting covers asserted byte-identical across engines.

The table is persisted to ``benchmarks/results/fdtree.txt`` and
machine-readable timings (plus engine speedups over the recursive
baseline) to ``benchmarks/results/BENCH_fdtree.json``.
"""

from __future__ import annotations

import random

import pytest

from _util import emit, emit_json
from repro import kernels
from repro.evaluation.reporting import format_table
from repro.structures import fdtree
from repro.structures.fdtree import FDTree

#: engine configurations, the recursive baseline first
ENGINES = ["legacy", "level-python"] + (
    ["level-numpy"] if kernels.numpy_available() else []
)

#: (operation, engine config) → seconds (best of the measured rounds)
_ROWS: dict[tuple[str, str], float] = {}

#: covers built by the end-to-end workload, compared at teardown
_COVERS: dict[str, list[tuple[int, int]]] = {}

#: the workload whose speedup over the recursive baseline gates the PR
GATE_OPERATION = "generalization batch (wide lattice)"
SPEEDUP_GATE = 5.0

WIDTH = 36
EXCLUDED = WIDTH - 1  # every stored LHS contains it; no query does

DATASET_SIZES = {
    "generalization batch (wide lattice)": {
        "attributes": WIDTH,
        "stored_lhss": 30 + 4060,
        "queries": 200,
        "query_popcount": 30,
    },
    "collect_violated sweep (wide lattice)": {
        "attributes": WIDTH,
        "stored_lhss": 30 + 4060,
        "agree_sets": 100,
    },
    "any_violated screen (wide lattice)": {
        "attributes": WIDTH,
        "stored_lhss": 30 + 4060,
        "agree_sets": 2_000,
    },
    "induction end-to-end (12 attrs)": {
        "attributes": 12,
        "agree_sets": 8_000,
    },
}


@pytest.fixture(params=ENGINES)
def lattice_engine(request):
    """Pin the FD-tree engine (and kernel backend) for one benchmark."""
    config = request.param
    if config == "legacy":
        fdtree.set_engine("legacy")
        kernels.set_backend("python")
    else:
        fdtree.set_engine("level")
        kernels.set_backend(config.split("-", 1)[1])
    yield config
    fdtree.set_engine(None)
    kernels.set_backend(None)


def _speedups() -> dict[str, dict[str, float]]:
    """operation → {config: legacy_seconds / config_seconds}."""
    out: dict[str, dict[str, float]] = {}
    for (operation, config), seconds in _ROWS.items():
        if config == "legacy":
            continue
        legacy_seconds = _ROWS.get((operation, "legacy"))
        if legacy_seconds and seconds:
            out.setdefault(operation, {})[config] = legacy_seconds / seconds
    return out


@pytest.fixture(scope="module", autouse=True)
def _engine_report(request):
    yield
    if not _ROWS:
        return
    if len({tuple(cover) for cover in _COVERS.values()}) > 1:
        raise AssertionError(
            f"covers diverge across engines: {sorted(_COVERS)}"
        )
    speedups = _speedups()
    operations = list(dict.fromkeys(op for op, _ in _ROWS))
    table_rows = []
    for operation in operations:
        for config in ENGINES:
            seconds = _ROWS.get((operation, config))
            if seconds is None:
                continue
            speedup = speedups.get(operation, {}).get(config)
            table_rows.append(
                [
                    operation,
                    config,
                    f"{seconds * 1e3:.2f}",
                    f"{speedup:.1f}x" if speedup else "",
                ]
            )
    emit(
        format_table(
            ["operation", "engine", "time (ms)", "vs legacy"],
            table_rows,
            title="FD-tree lattice engine micro-benchmarks",
        ),
        request,
        filename="fdtree",
    )
    gate_speedup = max(
        speedups.get(GATE_OPERATION, {}).values(), default=None
    )
    emit_json(
        "fdtree",
        {
            "engines": [
                config
                for config in ENGINES
                if any(key[1] == config for key in _ROWS)
            ],
            "dataset_sizes": DATASET_SIZES,
            "timings_seconds": {
                operation: {
                    config: _ROWS[(operation, config)]
                    for config in ENGINES
                    if (operation, config) in _ROWS
                }
                for operation in operations
            },
            "speedups_over_legacy": speedups,
            "gate": {
                "operation": GATE_OPERATION,
                "required_speedup": SPEEDUP_GATE,
                "best_speedup": gate_speedup,
                "gate_passed": (
                    gate_speedup >= SPEEDUP_GATE
                    if gate_speedup is not None
                    else None
                ),
            },
        },
    )
    # Acceptance gate: the level engine (best available backend) beats
    # the recursive baseline ≥5x on the wide-lattice generalization
    # preset.  Only evaluated when the baseline was measured too.
    assert gate_speedup is None or gate_speedup >= SPEEDUP_GATE, (
        f"{GATE_OPERATION}: lattice speedup {gate_speedup:.1f}x "
        f"< {SPEEDUP_GATE}x over the recursive baseline"
    )


def _populate_wide_lattice(tree: FDTree) -> None:
    """30 pairs + 4 060 quads, every LHS containing ``EXCLUDED``."""
    excluded_bit = 1 << EXCLUDED
    for a in range(30):
        tree.add((1 << a) | excluded_bit, 1 << (a % 8))
    for a in range(30):
        for b in range(a + 1, 30):
            for c in range(b + 1, 30):
                lhs = (1 << a) | (1 << b) | (1 << c) | excluded_bit
                tree.add(lhs, 1 << ((a + b + c) % 12))


def _wide_queries(
    count: int, seed: int, include_excluded: bool = False
) -> list[int]:
    """Popcount-30 masks over attributes 0..34 (never ``EXCLUDED``).

    With ``include_excluded`` the masks sample all ``WIDTH`` attributes
    instead, so stored LHSs (which all contain ``EXCLUDED``) can be
    subsets — the violation workloads need real hits.
    """
    rng = random.Random(seed)
    population = list(range(WIDTH if include_excluded else WIDTH - 1))
    out = []
    for _ in range(count):
        chosen = rng.sample(population, 30)
        mask = 0
        for attr in chosen:
            mask |= 1 << attr
        out.append(mask)
    return out


def test_generalization_batch_wide(benchmark, lattice_engine):
    tree = FDTree(WIDTH)
    _populate_wide_lattice(tree)
    # RHS attributes drawn from the stored RHS range (0..11), so the
    # rhs-union bookkeeping cannot prune the walk outright; every query
    # still misses because stored LHSs all contain ``EXCLUDED``.
    rng = random.Random(19)
    pairs = [
        (mask, rng.randrange(12)) for mask in _wide_queries(200, 17)
    ]

    hits = benchmark.pedantic(
        tree.contains_generalization_batch, args=(pairs,),
        rounds=5, iterations=1,
    )
    assert hits == [False] * len(pairs)  # full sweeps: nothing matches
    _ROWS[(GATE_OPERATION, lattice_engine)] = benchmark.stats.stats.min


def test_collect_violated_sweep_wide(benchmark, lattice_engine):
    tree = FDTree(WIDTH)
    _populate_wide_lattice(tree)
    agree_sets = _wide_queries(100, 23, include_excluded=True)

    violated = benchmark.pedantic(
        tree.collect_violated_batch, args=(agree_sets,),
        rounds=5, iterations=1,
    )
    assert sum(len(v) for v in violated) > 0
    _ROWS[
        ("collect_violated sweep (wide lattice)", lattice_engine)
    ] = benchmark.stats.stats.min


def test_any_violated_screen_wide(benchmark, lattice_engine):
    tree = FDTree(WIDTH)
    _populate_wide_lattice(tree)
    agree_sets = _wide_queries(2_000, 29, include_excluded=True)

    flags = benchmark.pedantic(
        tree.any_violated_batch, args=(agree_sets,),
        rounds=3, iterations=1,
    )
    assert any(flags)
    _ROWS[
        ("any_violated screen (wide lattice)", lattice_engine)
    ] = benchmark.stats.stats.min


@pytest.fixture(scope="module")
def induction_agree_sets():
    from repro.verification.planted import plant_instance

    instance = plant_instance(
        91, num_columns=12, num_rows=600, null_rate=0.1
    ).instance
    encoding = instance.encoded(True)
    rng = random.Random(13)
    n = encoding.num_rows
    lefts = [rng.randrange(n) for _ in range(8_000)]
    rights = [rng.randrange(n) for _ in range(8_000)]
    masks = encoding.agree_sets_batch(lefts, rights)
    full = (1 << 12) - 1
    return [mask for left, right, mask in zip(lefts, rights, masks)
            if left != right and mask != full]


def test_induction_end_to_end(benchmark, lattice_engine, induction_agree_sets):
    from repro.discovery.hyfd.induction import build_positive_cover

    cover = benchmark.pedantic(
        build_positive_cover, args=(12, induction_agree_sets),
        rounds=3, iterations=1,
    )
    _COVERS[lattice_engine] = list(cover.iter_all())
    _ROWS[
        ("induction end-to-end (12 attrs)", lattice_engine)
    ] = benchmark.stats.stats.min
