"""Recover the TPC-H snowflake from its denormalized join (Figure 3).

This is the paper's headline effectiveness experiment at laptop scale:
generate the 8-table TPC-H-like dataset, join everything into one
universal relation, normalize it fully automatically, and compare the
recovered schema against the original (the gold standard).

Things to look for in the output, mirroring the paper's §8.3:

* every original relation appears in the recovered schema,
* keys and foreign keys match the original snowflake,
* the constant ``o_shippriority`` is misplaced (the paper's REGION
  flaw), and a couple of over-splits occur on the fact-table side.

Run with::

    python examples/tpch_normalization.py [--scale small|default]
"""

import argparse

from repro import normalize
from repro.datagen.tpch import TPCH_GOLD, TpchScale, denormalized_tpch
from repro.evaluation.metrics import evaluate_schema_recovery

SCALES = {
    "small": TpchScale(
        regions=3,
        nations=6,
        suppliers=10,
        parts=20,
        partsupps=40,
        customers=12,
        orders=30,
        lineitems=100,
    ),
    "default": TpchScale(),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    args = parser.parse_args()

    universal = denormalized_tpch(SCALES[args.scale])
    print(
        f"Universal relation: {universal.arity} attributes x "
        f"{universal.num_rows} rows (all 8 TPC-H tables joined)"
    )
    print("Normalizing (HyFD discovery + automatic selection) ...")
    result = normalize(universal)

    print()
    print("Recovered schema:")
    print(result.schema.to_str())
    print()
    print("Decomposition log:")
    for step in result.steps:
        print(f"  {step.to_str()}")
    print()

    report = evaluate_schema_recovery(result.schema, TPCH_GOLD)
    print("Schema recovery vs. the original TPC-H (gold standard):")
    print(report.to_str())
    print()

    timings = ", ".join(
        f"{component}={seconds:.2f}s"
        for component, seconds in result.timings.items()
        if seconds >= 0.01
    )
    print(f"Component timings: {timings}")
    print(f"Stored values: {result.original_values} -> {result.total_values}")

    shippriority_home = next(
        instance.name
        for instance in result.instances.values()
        if "o_shippriority" in instance.columns
    )
    print(
        f"\nThe constant o_shippriority landed in {shippriority_home!r} — "
        "the same class of flaw the paper reports (it ends up in REGION)."
    )


if __name__ == "__main__":
    main()
