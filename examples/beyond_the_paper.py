"""Beyond the paper: 4NF, dynamic data, and richer scoring.

The paper's §6 and §9 sketch three extensions without evaluating them;
this example demonstrates all three as implemented in
:mod:`repro.extensions`:

1. **4NF normalization** — multi-valued dependencies are discovered
   from the data and decomposed just like FDs ("the normalization
   algorithm, then, would work in the same manner", §6),
2. **dynamic data** — the §9 open question: new rows are routed into
   the normalized schema, and rows that break a discovered constraint
   are reported instead of silently corrupting the schema,
3. **extended constraint scoring** — §9 suggests "research on other
   features for the key and foreign key selection"; column-name,
   cardinality-ratio, and RHS-coverage features are packaged as a
   drop-in decider.

Run with::

    python examples/beyond_the_paper.py
"""

from repro import normalize
from repro.extensions import (
    ConstraintMonitor,
    ExtendedScoringDecider,
    FourNFNormalizer,
    discover_mvds,
)
from repro.io.datasets import address_example
from repro.io.graphviz import schema_to_dot
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def demo_4nf() -> None:
    print("=== 1. 4NF: decomposing a multi-valued dependency ===")
    relation = Relation("course", ("teacher", "book", "student"))
    rows = []
    books = {"Curie": ["B1", "B2"], "Noether": ["B1", "B3"]}
    students = {"Curie": ["s1", "s2"], "Noether": ["s2", "s3"]}
    for teacher in books:
        for book in books[teacher]:
            for student in students[teacher]:
                rows.append((teacher, book, student))
    course = RelationInstance.from_rows(relation, rows)

    print(f"Input: course(teacher, book, student), {course.num_rows} rows")
    print("No FD holds — BCNF sees nothing to do.  But the data says:")
    for mvd in discover_mvds(course, max_lhs_size=1):
        print(f"  {mvd.to_str(course.columns)}")

    result = FourNFNormalizer(algorithm="hyfd").run(course)
    print("\n4NF result:")
    print(result.to_str())
    print()


def demo_dynamic_data() -> None:
    print("=== 2. Dynamic data: constraints meet new rows ===")
    address = address_example()
    result = normalize(address)
    monitor = ConstraintMonitor(result)

    good = ("Nora", "Klein", "10115", "Berlin", "Giffey")
    print(f"Routing consistent row {good} ...")
    violations = monitor.route_universal_row("address", good, apply=True)
    print(f"  -> {len(violations)} violations; row distributed over "
          f"{len(result.instances)} relations")

    bad = ("Max", "Lang", "14482", "Potsdam", "Schmidt")
    print(f"Routing row {bad} (14482 suddenly has a new mayor) ...")
    violations = monitor.route_universal_row("address", bad)
    for violation in violations:
        print(f"  -> {violation.to_str()}")
    print(
        "The discovered FD Postcode -> Mayor held on the old data only — "
        "exactly the 'dynamic data' hazard the paper's conclusion names.\n"
    )


def demo_extended_scoring() -> None:
    print("=== 3. Extended constraint scoring (drop-in decider) ===")
    address = address_example()
    result = normalize(address, decider=ExtendedScoringDecider(extras_weight=1.0))
    print(result.schema.to_str())
    print()
    print("Graphviz preview (paper §9: 'graphical previews of normalized")
    print("relations and their connections'):")
    print(schema_to_dot(result.schema))


def main() -> None:
    demo_4nf()
    demo_dynamic_data()
    demo_extended_scoring()


if __name__ == "__main__":
    main()
