"""Quickstart: normalize the paper's running example (Table 1).

Runs the complete pipeline on the small address dataset from Section 1
of "Data-driven Schema Normalization" (EDBT 2017) and prints every
intermediate artifact, ending with the exact decomposition the paper
derives: ``R1(First, Last, Postcode)`` and ``R2(Postcode, City,
Mayor)`` connected by a foreign key, shrinking the stored values from
30 to 27.

Run with::

    python examples/quickstart.py
"""

from repro import HyFD, address_example, normalize, schema_to_ddl
from repro.core.closure import optimized_closure


def main() -> None:
    address = address_example()
    print("Input relation:")
    print(f"  {address.relation.to_str()}  ({address.num_rows} rows)")
    print()

    # Step 1: discover all minimal FDs (the paper counts twelve).
    fds = HyFD().discover(address)
    print(f"Step 1 - FD discovery: {fds.count_single_rhs()} minimal FDs")
    for line in fds.to_strings(address.columns):
        print(f"  {line}")
    print()

    # Step 2: closure calculation (optimized, Algorithm 3).
    extended = optimized_closure(fds)
    print("Step 2 - extended FDs (RHS maximized):")
    for line in extended.to_strings(address.columns):
        print(f"  {line}")
    print()

    # Steps 3-7: the full Normalize pipeline in one call.
    result = normalize(address)
    print("Normalized schema:")
    print(result.to_str())
    print()

    print("SQL DDL:")
    print(schema_to_ddl(result.schema, result.instances))

    # Losslessness: joining the parts back yields the original data.
    rebuilt = result.reconstruct("address")
    assert sorted(rebuilt.iter_rows()) == sorted(address.iter_rows())
    print("Lossless-join check passed: the decomposition preserves all data.")


if __name__ == "__main__":
    main()
