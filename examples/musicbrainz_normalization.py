"""Recover a non-snowflake schema: MusicBrainz (Figure 4).

Unlike TPC-H, the MusicBrainz-like schema contains m:n link tables
(``artist_credit_name``, ``release_label``), so the denormalized join
is not snowflake-shaped.  The paper observes three effects, all of
which this example reproduces:

* almost every original relation is recovered exactly,
* ``artist_credit_name`` is the one relation that is *not*
  reconstructed — its attributes are absorbed into semantically
  related relations,
* a fact-table-like top-level relation remains, representing the
  many-to-many relationships between artists, labels, and tracks.

Run with::

    python examples/musicbrainz_normalization.py
"""

from repro import normalize
from repro.datagen.musicbrainz import MUSICBRAINZ_GOLD, denormalized_musicbrainz
from repro.evaluation.metrics import evaluate_schema_recovery


def main() -> None:
    universal = denormalized_musicbrainz()
    print(
        f"Universal relation: {universal.arity} attributes x "
        f"{universal.num_rows} rows (11 MusicBrainz tables joined, sampled)"
    )
    print("Normalizing (HyFD discovery + automatic selection) ...")
    result = normalize(universal)

    print()
    print("Recovered schema:")
    print(result.schema.to_str())
    print()

    report = evaluate_schema_recovery(result.schema, MUSICBRAINZ_GOLD)
    print("Schema recovery vs. the original MusicBrainz subset:")
    print(report.to_str())
    print()

    top = result.instances[universal.name]
    print(
        f"Fact-table-like top-level relation: {top.name!r} with "
        f"{top.arity} attributes and {top.num_rows} rows — it holds the "
        "m:n relationships the snowflake decomposition cannot dissolve."
    )
    acn = report.relation_matches.get("artist_credit_name")
    if acn and acn[1] < 1.0:
        print(
            f"artist_credit_name was not fully reconstructed (best match "
            f"J={acn[1]:.2f}) — the exact flaw the paper reports for this "
            "relation."
        )

    rebuilt = result.reconstruct(universal.name)
    assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())
    print("Lossless-join check passed.")


if __name__ == "__main__":
    main()
