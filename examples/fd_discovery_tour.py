"""A tour of the FD-discovery and closure substrate.

Runs all four discovery algorithms (brute force, TANE, DFD, HyFD) on
the same dataset, confirms they agree on the complete set of minimal
FDs, and compares the three closure algorithms of paper §4 on the
result — a small, self-contained version of the efficiency analysis.

Run with::

    python examples/fd_discovery_tour.py [--dataset horse|plista|amalgam1|flight|planets]
"""

import argparse
import time

from repro import (
    DFD,
    BruteForceFD,
    HyFD,
    Tane,
    improved_closure,
    naive_closure,
    optimized_closure,
    planets_example,
)
from repro.datagen.profiles import (
    amalgam_like,
    flight_like,
    horse_like,
    plista_like,
)
from repro.evaluation.reporting import format_table

DATASETS = {
    "planets": planets_example,
    # smaller variants so even brute force stays friendly here
    "horse": lambda: horse_like(num_rows=80),
    "plista": lambda: plista_like(num_rows=120),
    "amalgam1": lambda: amalgam_like(num_rows=30),
    "flight": lambda: flight_like(num_rows=120),
}


def canon(fds):
    return {
        (lhs, attr)
        for lhs, rhs in fds.items()
        for attr in range(fds.num_attributes)
        if rhs >> attr & 1
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=sorted(DATASETS), default="planets")
    args = parser.parse_args()

    instance = DATASETS[args.dataset]()
    print(
        f"Dataset {instance.name!r}: {instance.arity} attributes x "
        f"{instance.num_rows} rows\n"
    )

    # --- Discovery ----------------------------------------------------
    algorithms = [BruteForceFD(), Tane(), DFD(), HyFD()]
    rows = []
    results = {}
    for algorithm in algorithms:
        started = time.perf_counter()
        fds = algorithm.discover(instance)
        elapsed = time.perf_counter() - started
        results[algorithm.name] = fds
        rows.append(
            [algorithm.name, fds.count_single_rhs(), len(fds), f"{elapsed:.3f}"]
        )
    print(
        format_table(
            ["algorithm", "minimal FDs", "aggregated", "seconds"],
            rows,
            title="FD discovery",
        )
    )

    reference = canon(results["bruteforce"])
    for name, fds in results.items():
        assert canon(fds) == reference, f"{name} disagrees with the oracle!"
    print("\nAll four algorithms agree on the complete set of minimal FDs.\n")

    # --- Closure (paper §4) -------------------------------------------
    fds = results["hyfd"]
    rows = []
    for label, algorithm in [
        ("naive (Alg. 1)", naive_closure),
        ("improved (Alg. 2)", improved_closure),
        ("optimized (Alg. 3)", optimized_closure),
    ]:
        started = time.perf_counter()
        extended = algorithm(fds.copy())
        elapsed = time.perf_counter() - started
        rows.append(
            [
                label,
                f"{fds.average_rhs_size():.2f}",
                f"{extended.average_rhs_size():.2f}",
                f"{elapsed:.4f}",
            ]
        )
    print(
        format_table(
            ["algorithm", "avg |RHS| before", "after", "seconds"],
            rows,
            title="Closure calculation",
        )
    )

    if args.dataset == "planets":
        planets = instance
        fds = results["hyfd"]
        atmosphere = planets.relation.mask_of(["Atmosphere"])
        rings = planets.relation.mask_of(["Rings"])
        if fds.rhs_of(atmosphere) & rings:
            print(
                "\nAs promised in the paper's introduction: "
                "Atmosphere -> Rings holds on the planets data."
            )


if __name__ == "__main__":
    main()
