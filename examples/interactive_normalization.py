"""Semi-automatic normalization: the user in the loop (paper §3/§7).

Normalize is "(semi-)automatic": at every decomposition the ranked
violating FDs are shown and a human may pick one, strip shared
attributes from its RHS, or stop normalizing a relation whose
remaining candidates look accidental.

This example demonstrates both session styles on the paper's address
dataset extended with an accidental FD:

1. a *scripted* session (:class:`ScriptedDecider`) — the replayable
   form used in tests and batch pipelines,
2. an optional *live* session (``--live``) that prompts on stdin via
   :class:`CallbackDecider`, like the paper's console tool.

Run with::

    python examples/interactive_normalization.py [--live]
"""

import argparse

from repro import CallbackDecider, Normalizer, ScriptedDecider
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def tricky_dataset() -> RelationInstance:
    """Table 1 plus a sparse column that creates an accidental FD.

    ``Nickname`` is almost always NULL; the two non-NULL values make
    ``Nickname → First`` (and more) hold by pure coincidence — exactly
    the kind of semantically false FD a user should refuse to split on.
    """
    relation = Relation(
        "people", ("First", "Last", "Postcode", "City", "Mayor", "Nickname")
    )
    rows = [
        ("Thomas", "Miller", "14482", "Potsdam", "Jakobs", None),
        ("Sarah", "Miller", "14482", "Potsdam", "Jakobs", "Sa"),
        ("Peter", "Smith", "60329", "Frankfurt", "Feldmann", None),
        ("Jasmine", "Cone", "01069", "Dresden", "Orosz", "Jas"),
        ("Mike", "Cone", "14482", "Potsdam", "Jakobs", None),
        ("Thomas", "Moore", "60329", "Frankfurt", "Feldmann", None),
    ]
    return RelationInstance.from_rows(relation, rows)


def scripted_session() -> None:
    print("=== Scripted session (replayable user decisions) ===")
    data = tricky_dataset()
    # The script: accept the top-ranked FD for the first split, then
    # STOP the follow-up relation (its remaining candidates are the
    # accidental Nickname FDs).
    decider = ScriptedDecider(fd_choices=[0, None])
    result = Normalizer(algorithm="hyfd", decider=decider).run(data)
    print(result.to_str())
    if result.stopped_relations:
        print(
            f"\nThe user stopped normalizing: {result.stopped_relations} "
            "(remaining candidates were accidental FDs)"
        )
    print()


def live_session() -> None:
    print("=== Live session (type an index, or 's' to stop) ===")
    data = tricky_dataset()

    def on_violating_fd(instance, ranking):
        print(f"\nRelation {instance.name!r} is not in BCNF. Candidates:")
        for index, score in enumerate(ranking[:8]):
            lhs = ",".join(instance.relation.names_of(score.fd.lhs))
            rhs = ",".join(instance.relation.names_of(score.fd.rhs))
            print(f"  [{index}] ({score.total:.3f}) {lhs} -> {rhs}")
        answer = input("Split on which FD? [0 / s to stop] ").strip()
        if answer.lower() == "s":
            return None
        return int(answer) if answer else 0

    def on_primary_key(instance, ranking):
        print(f"\nPrimary key for {instance.name!r}:")
        for index, score in enumerate(ranking[:8]):
            key = ",".join(instance.relation.names_of(score.key))
            print(f"  [{index}] ({score.total:.3f}) {{{key}}}")
        answer = input("Which key? [0] ").strip()
        return int(answer) if answer else 0

    decider = CallbackDecider(on_violating_fd, on_primary_key)
    result = Normalizer(algorithm="hyfd", decider=decider).run(data)
    print()
    print(result.to_str())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--live", action="store_true", help="prompt on stdin instead of replaying"
    )
    args = parser.parse_args()
    if args.live:
        live_session()
    else:
        scripted_session()


if __name__ == "__main__":
    main()
