"""Handling errors in the data with approximate FDs (paper §9).

The paper's introduction notes that the "obvious" constraint
``Postcode → City`` is usually violated by real-world exceptions, and
its conclusion lists "errors in the data" as an open question.  This
example shows the workflow the :mod:`repro.extensions.approximate`
module enables:

1. exact discovery misses the semantically true FD (one dirty row
   kills it),
2. approximate discovery (TANE's g3 error) recovers it with a small
   tolerance,
3. the concrete exception rows are reported for inspection,
4. after excluding them, exact normalization produces the schema the
   clean data deserves.

Run with::

    python examples/data_errors.py
"""

from repro import HyFD, normalize
from repro.extensions.approximate import discover_afds, g3_error, violating_rows
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def dirty_address() -> RelationInstance:
    """The paper's Table 1 with one typo: a second city for 60329."""
    relation = Relation(
        "address", ("First", "Last", "Postcode", "City", "Mayor")
    )
    rows = [
        ("Thomas", "Miller", "14482", "Potsdam", "Jakobs"),
        ("Sarah", "Miller", "14482", "Potsdam", "Jakobs"),
        ("Peter", "Smith", "60329", "Frankfurt", "Feldmann"),
        ("Jasmine", "Cone", "01069", "Dresden", "Orosz"),
        ("Mike", "Cone", "14482", "Potsdam", "Jakobs"),
        ("Thomas", "Moore", "60329", "Frankfurt", "Feldmann"),
        ("Lena", "Vogt", "60329", "Frankfrt", "Feldmann"),  # the typo
    ]
    return RelationInstance.from_rows(relation, rows)


def main() -> None:
    instance = dirty_address()
    postcode = instance.relation.mask_of(["Postcode"])
    city_index = instance.relation.column_index("City")

    print("1. Exact discovery on the dirty data:")
    fds = HyFD().discover(instance)
    has_exact = bool(fds.rhs_of(postcode) & (1 << city_index))
    print(f"   Postcode -> City valid exactly? {has_exact}")
    error = g3_error(instance, postcode, city_index)
    print(f"   g3(Postcode -> City) = {error:.3f} "
          f"({error * instance.num_rows:.0f} of {instance.num_rows} rows)")
    print()

    print("2. Approximate discovery with 15% tolerance:")
    afds = discover_afds(instance, max_error=0.15, max_lhs_size=2)
    for afd in afds:
        if afd.rhs_attr == city_index and afd.lhs == postcode:
            print(f"   found: {afd.to_str(instance.columns)}")
    print()

    print("3. The exception rows:")
    exceptions = violating_rows(instance, postcode, city_index)
    for row_index in exceptions:
        print(f"   row {row_index}: {instance.row(row_index)}")
    print()

    print("4. Normalizing the data without the exceptions:")
    kept = [
        instance.row(i)
        for i in range(instance.num_rows)
        if i not in set(exceptions)
    ]
    clean = RelationInstance.from_rows(
        Relation("address", instance.columns), kept
    )
    result = normalize(clean)
    print(result.schema.to_str())
    print(
        "\nWith the dirty row quarantined, Postcode -> City,Mayor is exact "
        "again and the paper's decomposition re-emerges."
    )


if __name__ == "__main__":
    main()
