# Convenience targets mirroring the CI workflow (.github/workflows/ci.yml).

PYTHON ?= python

.PHONY: verify bench bench-engine

# Tier-1 suite — the gate every change must keep green (see ROADMAP.md).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Full paper-reproduction benchmark harness (writes benchmarks/results/).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Partition-engine micro-benchmarks only (the PLI hot path).
bench-engine:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_partition_engine.py --benchmark-only -q
