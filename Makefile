# Convenience targets mirroring the CI workflow (.github/workflows/ci.yml).

PYTHON ?= python

.PHONY: verify verify-parallel verify-kernels verify-lattice verify-spill serve-smoke fuzz fuzz-faults fuzz-chaos fuzz-incremental fuzz-kernels fuzz-lattice bench bench-engine bench-fdtree bench-incremental bench-parallel bench-kernels bench-serve bench-oocore

# Tier-1 suite — the gate every change must keep green (see ROADMAP.md).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 again with the process pool engaged (docs/PARALLEL.md).
verify-parallel:
	REPRO_WORKERS=2 PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 pinned to each kernel backend, then the kernel-differential
# file under the pure-Python oracle (docs/KERNELS.md).  Requires numpy
# (pip install -e .[perf]); without it REPRO_KERNEL=numpy errors out.
verify-kernels:
	REPRO_KERNEL=numpy PYTHONPATH=src $(PYTHON) -m pytest -x -q
	REPRO_KERNEL=python PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_kernels_differential.py

# Tier-1 pinned to the recursive FD-tree baseline, then the lattice
# differential + metamorphic suites, which sweep the whole
# engine × backend grid themselves (docs/ALGORITHMS.md).
verify-lattice:
	REPRO_FDTREE=legacy PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_fdtree_differential.py tests/test_lattice_metamorphic.py -m "not fuzz"

# Tier-1 again with every encoded column forced onto the mmap spill
# tier and chunked ingestion engaged (docs/STORAGE.md): proves the
# whole pipeline is tier-oblivious, byte for byte.
verify-spill:
	REPRO_STORAGE=spill PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Daemon end-to-end smoke: real `repro serve` subprocess, upload →
# batches → DDL via `repro submit`, byte-diffed against the offline
# CLI, SIGTERM drain, kill -9 + --resume-dir revival with zero
# rediscovery (docs/SERVER.md).
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_server_smoke.py tests/test_server.py

# Differential/metamorphic verification campaign (docs/TESTING.md).
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro verify --seeds 50 --repro-out fuzz-repros.py
	PYTHONPATH=src $(PYTHON) -m pytest -q -m fuzz

# Fault-injection campaign: breach/kill at checkpoint ticks, assert the
# robustness contract (docs/ROBUSTNESS.md).
fuzz-faults:
	PYTHONPATH=src $(PYTHON) -m repro verify --faults --seeds 25

# Worker-fault chaos campaign: real SIGKILL/exit/hang faults inside
# pool workers mid-shard; the self-healing pool must recover every
# seed with DDL byte-identical to the serial reference
# (docs/PARALLEL.md, failure-modes matrix).
fuzz-chaos:
	REPRO_WORKERS=2 PYTHONPATH=src $(PYTHON) -m repro verify --faults --seeds 25 --workers 2

# Incremental-differential campaign: seeded batch streams against the
# incremental engine, asserting byte-identical covers/keys/DDL vs
# from-scratch runs (docs/INCREMENTAL.md).
fuzz-incremental:
	PYTHONPATH=src $(PYTHON) -m repro verify --incremental --seeds 25 --batches 10

# Kernel-differential campaign: numpy vs python identity on the full
# kernel surface, plus the verification harness pinned to numpy.
fuzz-kernels:
	KERNEL_FUZZ_SEEDS=50 PYTHONPATH=src $(PYTHON) -m pytest -q -m fuzz tests/test_kernels_differential.py
	PYTHONPATH=src $(PYTHON) -m repro verify --seeds 25 --kernel numpy

# Lattice-engine fuzz campaign: seeded op-sequence/cover equivalence
# vs the naive oracle, plus the verification harness pinned to the
# recursive baseline engine.
fuzz-lattice:
	LATTICE_FUZZ_SEEDS=50 PYTHONPATH=src $(PYTHON) -m pytest -q -m fuzz tests/test_fdtree_differential.py tests/test_lattice_metamorphic.py
	PYTHONPATH=src $(PYTHON) -m repro verify --seeds 25 --fdtree legacy

# Full paper-reproduction benchmark harness (writes benchmarks/results/).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Partition-engine micro-benchmarks only (the PLI hot path).
bench-engine:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_partition_engine.py --benchmark-only -q

# FD-tree lattice-engine micro-benchmarks: level vs recursive baseline
# (enforces the ≥5x wide-lattice generalization gate, writes
# BENCH_fdtree.json).
bench-fdtree:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fdtree.py --benchmark-only -q

# Incremental maintenance vs. full re-discovery under append streams.
bench-incremental:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_incremental.py --benchmark-only -q

# Worker-pool scaling at 1/2/4/8 workers (asserts byte-identity;
# docs/PARALLEL.md explains why single-CPU hosts report < 1.0x).
bench-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py --benchmark-only -q

# Daemon latency/throughput: cold create vs warm reads (≥5x gate) and
# 1/4/16-tenant interleaved throughput (writes BENCH_serve.json).
bench-serve:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_serve_latency.py --benchmark-only -q

# Out-of-core scaling: peak RSS + wall-clock, memory tier vs spill
# tier, at 1x/4x/16x of a notional budget, with DDL byte-identity
# asserted at every scale (writes BENCH_oocore.json).
bench-oocore:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_oocore.py --benchmark-only -q

# Kernel backend comparison: partition-engine micro-benchmarks under
# both backends (enforces the ≥5x large-preset gate, writes
# BENCH_partition_engine.json), then the scaling bench once per
# backend so BENCH_parallel_scaling.json accumulates both runs.
bench-kernels:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_partition_engine.py --benchmark-only -q
	REPRO_KERNEL=python PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py --benchmark-only -q
	REPRO_KERNEL=numpy PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py --benchmark-only -q
