# Convenience targets mirroring the CI workflow (.github/workflows/ci.yml).

PYTHON ?= python

.PHONY: verify fuzz fuzz-faults bench bench-engine

# Tier-1 suite — the gate every change must keep green (see ROADMAP.md).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Differential/metamorphic verification campaign (docs/TESTING.md).
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro verify --seeds 50 --repro-out fuzz-repros.py
	PYTHONPATH=src $(PYTHON) -m pytest -q -m fuzz

# Fault-injection campaign: breach/kill at checkpoint ticks, assert the
# robustness contract (docs/ROBUSTNESS.md).
fuzz-faults:
	PYTHONPATH=src $(PYTHON) -m repro verify --faults --seeds 25

# Full paper-reproduction benchmark harness (writes benchmarks/results/).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Partition-engine micro-benchmarks only (the PLI hot path).
bench-engine:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_partition_engine.py --benchmark-only -q
