"""Differential tests: numpy kernels vs the pure-Python oracle.

The numpy backend must reproduce the interpreted loops *byte for byte*:
identical stripped-partition CSR buffers (same clusters, same cluster
order, same row order), the identical violating row pair per refuted
FD, and identical agree masks — on planted and random instances, under
both NULL semantics, including single-row and empty-relation edge
cases.  When numpy is not installed the comparisons are skipped but
backend selection itself is still exercised.
"""

import os

import pytest

from repro import kernels
from repro.datagen.random_tables import random_instance
from repro.runtime.errors import InputError
from repro.structures.encoding import EncodedRelation
from repro.structures.partitions import PLICache, StrippedPartition
from repro.verification.planted import plant_instance

NUMPY = kernels.numpy_available()
requires_numpy = pytest.mark.skipif(not NUMPY, reason="numpy not installed")


@pytest.fixture(autouse=True)
def _restore_backend(monkeypatch):
    # Force the vectorized paths: the hybrid small-input dispatch would
    # otherwise delegate every one of these small fixtures to the python
    # oracle and the comparison would be vacuous.
    if NUMPY:
        from repro.kernels import npbackend

        monkeypatch.setattr(npbackend, "SMALL_INPUT_THRESHOLD", 0)
    yield
    kernels.set_backend(None)


def csr(partition: StrippedPartition) -> tuple[bytes, bytes, int]:
    return (
        partition.row_data.tobytes(),
        partition.offsets.tobytes(),
        partition.num_rows,
    )


def per_backend(fn):
    """Run ``fn`` once per backend and return {backend: result}."""
    results = {}
    for backend in ("python", "numpy"):
        kernels.set_backend(backend)
        results[backend] = fn()
    kernels.set_backend(None)
    return results


INSTANCES = [
    lambda: random_instance(11, 5, 120, domain_size=2, null_rate=0.3),
    lambda: random_instance(12, 4, 200, domain_size=[2, 3, 50, 200]),
    lambda: random_instance(13, 6, 80, domain_size=4, null_rate=0.6),
    lambda: plant_instance(21, num_columns=6, num_rows=150, null_rate=0.2).instance,
    lambda: plant_instance(22, num_columns=4, num_rows=60).instance,
    lambda: random_instance(14, 3, 1, domain_size=2),  # single row
    lambda: random_instance(15, 3, 0, domain_size=2),  # empty relation
    lambda: random_instance(16, 2, 40, domain_size=1),  # constant columns
]


@requires_numpy
@pytest.mark.parametrize("make", INSTANCES)
@pytest.mark.parametrize("null_equals_null", [True, False])
class TestPartitionIdentity:
    def test_single_attribute_partitions(self, make, null_equals_null):
        instance = make()
        encoding = instance.encoded(null_equals_null)

        def build():
            return [
                csr(
                    StrippedPartition.from_value_ids(
                        encoding.codes[attr], encoding.null_codes[attr]
                    )
                )
                for attr in range(encoding.arity)
            ]

        results = per_backend(build)
        assert results["python"] == results["numpy"]

    def test_pairwise_intersections(self, make, null_equals_null):
        instance = make()
        encoding = instance.encoded(null_equals_null)

        def build():
            singles = [
                StrippedPartition.from_value_ids(
                    encoding.codes[attr], encoding.null_codes[attr]
                )
                for attr in range(encoding.arity)
            ]
            out = []
            for a in range(encoding.arity):
                for b in range(encoding.arity):
                    if a != b:
                        out.append(csr(singles[a].intersect(singles[b])))
                        out.append(
                            csr(singles[a].intersect_ids(encoding.codes[b]))
                        )
            return out

        results = per_backend(build)
        assert results["python"] == results["numpy"]

    def test_violation_scans(self, make, null_equals_null):
        instance = make()
        encoding = instance.encoded(null_equals_null)

        def scan():
            out = []
            for lhs_attr in range(encoding.arity):
                partition = StrippedPartition.from_value_ids(
                    encoding.codes[lhs_attr], encoding.null_codes[lhs_attr]
                )
                rhs = [a for a in range(encoding.arity) if a != lhs_attr]
                probes = [encoding.codes[a] for a in rhs]
                out.append(partition.find_violations(rhs, probes))
                for attr, probe in zip(rhs, probes):
                    out.append(partition.find_violating_pair(probe))
                    out.append(partition.refines_column(probe))
            return out

        results = per_backend(scan)
        assert results["python"] == results["numpy"]

    def test_agree_sets(self, make, null_equals_null):
        instance = make()
        encoding = instance.encoded(null_equals_null)
        n = encoding.num_rows
        lefts = [i % n for i in range(0, 3 * n, 3)] if n else []
        rights = [(i * 7 + 1) % n for i in range(len(lefts))] if n else []

        results = per_backend(
            lambda: (
                encoding.agree_sets_batch(lefts, rights),
                encoding.agree_sets_vs(0, range(n)) if n else [],
            )
        )
        assert results["python"] == results["numpy"]
        # The scalar helper is the historical oracle for both.
        batch, _ = results["python"]
        assert batch == [
            encoding.agree_set(left, right)
            for left, right in zip(lefts, rights)
        ]


@requires_numpy
class TestWideRelations:
    def test_agree_masks_beyond_64_attributes(self):
        # 70 columns exercises the multi-word uint64 packing path.
        columns = [
            [(row * (attr + 1)) % 3 for row in range(40)] for attr in range(70)
        ]
        encoding = EncodedRelation.encode(columns)
        lefts = list(range(0, 40, 2))
        rights = list(range(1, 40, 2))
        results = per_backend(
            lambda: (
                encoding.agree_sets_batch(lefts, rights),
                encoding.agree_sets_vs(5, range(40)),
            )
        )
        assert results["python"] == results["numpy"]
        assert any(mask >> 64 for mask in results["python"][0])


@requires_numpy
class TestHybridDispatch:
    def test_small_inputs_delegate_to_python(self, monkeypatch):
        """At the default threshold a tiny call runs the oracle loop."""
        from repro.kernels import npbackend

        monkeypatch.undo()  # restore the real SMALL_INPUT_THRESHOLD
        assert npbackend.SMALL_INPUT_THRESHOLD > 0
        calls = []
        real = npbackend._py.from_value_ids
        monkeypatch.setattr(
            npbackend._py,
            "from_value_ids",
            lambda codes, null: calls.append(len(codes)) or real(codes, null),
        )
        small = [0, 1, 0, 1]
        large = [i % 7 for i in range(npbackend.SMALL_INPUT_THRESHOLD + 16)]
        kernels.set_backend("numpy")
        first = StrippedPartition.from_value_ids(small, None)
        second = StrippedPartition.from_value_ids(large, None)
        assert calls == [len(small)]  # only the tiny call delegated
        kernels.set_backend("python")
        assert csr(first) == csr(StrippedPartition.from_value_ids(small, None))
        assert csr(second) == csr(StrippedPartition.from_value_ids(large, None))


@requires_numpy
class TestCacheAndDiscovery:
    def test_plicache_chains_identical(self):
        instance = random_instance(31, 6, 150, domain_size=3, null_rate=0.2)
        masks = [0b11, 0b101, 0b111, 0b11010, 0b111111]

        def build():
            cache = PLICache(instance)
            return [csr(cache.get(mask)) for mask in masks]

        results = per_backend(build)
        assert results["python"] == results["numpy"]

    def test_hyfd_and_tane_covers_identical(self):
        from repro.discovery.hyfd.hyfd import HyFD
        from repro.discovery.tane import Tane

        instance = plant_instance(
            33, num_columns=6, num_rows=120, null_rate=0.15
        ).instance

        def discover():
            instance.invalidate_caches()
            return (
                sorted((fd.lhs, fd.rhs) for fd in HyFD().discover(instance)),
                sorted((fd.lhs, fd.rhs) for fd in Tane().discover(instance)),
            )

        results = per_backend(discover)
        assert results["python"] == results["numpy"]


class TestBackendSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        kernels.set_backend(None)
        expected = "numpy" if NUMPY else "python"
        assert kernels.backend_name() == expected

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        kernels.set_backend(None)
        assert kernels.backend_name() == "python"
        assert kernels.active().name == "python"

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fortran")
        kernels.set_backend(None)
        with pytest.raises(InputError):
            kernels.backend_name()

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(InputError):
            kernels.set_backend("cuda")

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        kernels.set_backend("auto")
        expected = "numpy" if NUMPY else "python"
        assert kernels.backend_name() == expected

    @requires_numpy
    def test_ensure_backend_switches(self):
        kernels.set_backend("python")
        assert kernels.backend_name() == "python"
        kernels.ensure_backend("numpy")
        assert kernels.backend_name() == "numpy"

    def test_counters_record_calls_and_rows(self):
        kernels.set_backend("python")
        mark = kernels.counters_snapshot()
        StrippedPartition.from_value_ids([0, 1, 0, 1, 2], None)
        delta = kernels.counters_delta(mark)
        assert delta["kernel_pli_from_ids_calls"] == 1
        assert delta["kernel_pli_from_ids_rows"] == 5

    def test_profile_records_backend(self):
        from repro.profiling import profile

        instance = random_instance(41, 3, 20, domain_size=2)
        kernels.set_backend("python")
        report = profile(instance)
        assert report.counters["kernel_backend"] == "python"
        assert report.counters["kernel_pli_from_ids_calls"] > 0

    def test_verify_cli_accepts_kernel_flag(self, capsys):
        from repro.verification.runner import main_verify

        rc = main_verify(
            ["--seeds", "2", "--rows", "10", "--quiet", "--kernel", "python"]
        )
        assert rc == 0
        assert kernels.backend_name() == "python"


@requires_numpy
@pytest.mark.fuzz
class TestKernelFuzz:
    """Wider seeded campaign (nightly CI): full-surface identity."""

    @pytest.mark.parametrize("seed", range(int(os.environ.get("KERNEL_FUZZ_SEEDS", 25))))
    def test_random_instances_identical(self, seed):
        instance = random_instance(
            seed,
            2 + seed % 6,
            (seed * 37) % 300,
            domain_size=1 + seed % 5,
            null_rate=(seed % 4) * 0.2,
        )
        for null_equals_null in (True, False):
            encoding = instance.encoded(null_equals_null)

            def full_surface():
                singles = [
                    StrippedPartition.from_value_ids(
                        encoding.codes[attr], encoding.null_codes[attr]
                    )
                    for attr in range(encoding.arity)
                ]
                out = [csr(p) for p in singles]
                product = StrippedPartition.single_cluster(encoding.num_rows)
                for attr, single in enumerate(singles):
                    product = product.intersect(single)
                    out.append(csr(product))
                    out.append(
                        product.find_violations(
                            list(range(encoding.arity)), encoding.codes
                        )
                    )
                n = encoding.num_rows
                if n:
                    out.append(encoding.agree_sets_vs(n - 1, range(n - 1)))
                return out

            results = per_backend(full_surface)
            assert results["python"] == results["numpy"], (
                f"seed={seed} null_equals_null={null_equals_null}"
            )
