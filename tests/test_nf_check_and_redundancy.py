"""Tests for the normal-form checker and the redundancy report."""

import pytest

from repro.core.nf_check import check_normal_form
from repro.core.normalize import normalize
from repro.evaluation.redundancy import redundancy_report
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


class TestCheckNormalForm:
    def test_address_violates_bcnf(self, address):
        report = check_normal_form(address, algorithm="bruteforce")
        assert not report.conforms
        postcode = address.relation.mask_of(["Postcode"])
        assert any(fd.lhs == postcode for fd in report.violating_fds)
        assert report.num_fds == 12

    def test_normalized_parts_conform(self, address):
        result = normalize(address, algorithm="bruteforce")
        for instance in result.instances.values():
            report = check_normal_form(instance, algorithm="bruteforce")
            assert report.conforms, report.to_str(instance.columns)

    def test_3nf_target(self, address):
        report = check_normal_form(address, target="3nf", algorithm="bruteforce")
        assert not report.conforms  # the Postcode FD is 3NF-violating too

    def test_4nf_detects_mvd(self):
        rows = []
        books = {"Curie": ["B1", "B2"], "Noether": ["B1", "B3"]}
        students = {"Curie": ["s1", "s2"], "Noether": ["s2", "s3"]}
        for teacher in books:
            for book in books[teacher]:
                for student in students[teacher]:
                    rows.append((teacher, book, student))
        course = RelationInstance.from_rows(
            Relation("course", ("teacher", "book", "student")), rows
        )
        bcnf = check_normal_form(course, target="bcnf", algorithm="bruteforce")
        assert bcnf.conforms  # no FDs at all
        fournf = check_normal_form(course, target="4nf", algorithm="bruteforce")
        assert not fournf.conforms
        assert fournf.violating_mvds

    def test_unknown_target(self, address):
        with pytest.raises(ValueError, match="unknown target"):
            check_normal_form(address, target="5nf")

    def test_to_str(self, address):
        report = check_normal_form(address, algorithm="bruteforce")
        text = report.to_str(address.columns)
        assert "VIOLATES BCNF" in text
        assert "Postcode" in text

    def test_algorithm_instance(self, address):
        from repro.discovery.tane import Tane

        report = check_normal_form(address, algorithm=Tane())
        assert report.num_fds == 12


class TestRedundancyReport:
    def test_address_savings(self, address):
        result = normalize(address, algorithm="bruteforce")
        report = redundancy_report(result, "address")
        assert report.values_before == 30
        assert report.values_after == 27
        assert report.values_saved == 3
        assert report.savings_ratio == pytest.approx(0.1)

    def test_paper_mayor_anomaly(self, address):
        """§1: changing Potsdam's mayor costs 3 cell updates before, 1 after."""
        result = normalize(address, algorithm="bruteforce")
        report = redundancy_report(result, "address")
        mayor = next(col for col in report.columns if col.column == "Mayor")
        # 6 stored copies, 3 distinct mayors: worst case 4 updates before
        assert mayor.values_before == 6
        assert mayor.values_after == 3
        assert mayor.redundant_before == 3
        assert mayor.redundant_after == 0
        assert mayor.max_update_cost_before == 4
        assert mayor.max_update_cost_after == 1

    def test_key_columns_are_the_join_price(self, address):
        result = normalize(address, algorithm="bruteforce")
        report = redundancy_report(result, "address")
        postcode = next(
            col for col in report.columns if col.column == "Postcode"
        )
        # Postcode now lives in both relations: 6 + 3 copies
        assert postcode.values_after == 9

    def test_totals_are_consistent(self, address):
        result = normalize(address, algorithm="bruteforce")
        report = redundancy_report(result, "address")
        assert sum(c.values_after for c in report.columns) == report.values_after

    def test_unknown_original(self, address):
        result = normalize(address, algorithm="bruteforce")
        with pytest.raises(ValueError, match="unknown original"):
            redundancy_report(result, "nope")

    def test_to_str(self, address):
        result = normalize(address, algorithm="bruteforce")
        text = redundancy_report(result, "address").to_str()
        assert "30 -> 27 stored values" in text
        assert "Mayor" in text
