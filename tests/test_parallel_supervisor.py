"""Self-healing worker-pool tests: supervision, retry, quarantine.

The contract under test (docs/PARALLEL.md, failure-modes matrix): a
worker that crashes, is OOM-killed, or hangs mid-shard costs the run a
respawn and a retry — never the result.  A payload that kills workers
repeatedly is quarantined to an in-process execution, and when
respawning itself keeps failing the whole pool degrades to serial.
Every healed run must stay byte-identical to the serial baseline,
which ``_chaos_probe``'s echo payloads and the HyFD acceptance test at
the bottom both check.
"""

import os

import pytest

import repro.parallel.pool as pool_mod
import repro.parallel.supervisor as supervisor_mod
from repro.discovery.hyfd import HyFD
from repro.parallel import (
    WorkerCrashError,
    WorkerError,
    get_pool,
    reap_orphan_segments,
    shutdown_pool,
)
from repro.parallel.shm import SEGMENT_PREFIX, owned_segments
from repro.runtime.errors import InputError
from repro.runtime.faults import (
    PROCESS_FAULT_MODES,
    WORKER_FAULT_MODES,
    FaultPlan,
)
from repro.runtime.governor import Budget, Governor, activate, checkpoint
from repro.verification.planted import plant_instance


@pytest.fixture(autouse=True)
def _clean_pool():
    yield
    shutdown_pool()


def _echoes(count):
    return [{"action": "echo", "value": index} for index in range(count)]


def _values(results):
    return [result["value"] for result in results]


class TestCrashRecovery:
    def test_transient_kill_respawns_and_retries(self, tmp_path):
        pool = get_pool(2)
        payloads = _echoes(4)
        payloads[1] = {
            "action": "kill",
            "value": 1,
            "marker": str(tmp_path / "kill-once"),
        }
        results = pool.map_tasks("chaos_probe", payloads)
        assert _values(results) == [0, 1, 2, 3]
        assert pool.stats.respawns >= 1
        assert pool.stats.retries >= 1
        assert pool.stats.quarantined == 0
        # The retry ran in a (respawned) worker, not the parent.
        assert results[1]["pid"] != os.getpid()

    def test_exit_status_recovery(self, tmp_path):
        # os._exit(137) — the OOM-killer's signature — instead of SIGKILL.
        pool = get_pool(2)
        payloads = _echoes(3)
        payloads[0] = {
            "action": "exit",
            "status": 137,
            "value": 0,
            "marker": str(tmp_path / "exit-once"),
        }
        results = pool.map_tasks("chaos_probe", payloads)
        assert _values(results) == [0, 1, 2]
        assert pool.stats.respawns >= 1

    def test_worker_dead_between_batches_is_reaped(self):
        pool = get_pool(2)
        results = pool.map_tasks("chaos_probe", _echoes(2))
        assert _values(results) == [0, 1]
        victim = pool._procs[0]
        victim.terminate()
        victim.join(5.0)
        results = pool.map_tasks("chaos_probe", _echoes(3))
        assert _values(results) == [0, 1, 2]
        assert all(worker.is_alive() for worker in pool._procs)

    def test_poison_shard_is_quarantined_in_process(self):
        # No marker: the payload kills every worker that touches it.
        pool = get_pool(2)
        payloads = _echoes(3)
        payloads[2] = {"action": "kill", "value": 2}
        results = pool.map_tasks("chaos_probe", payloads)
        assert _values(results) == [0, 1, 2]
        assert pool.stats.quarantined == 1
        assert pool.stats.in_process_tasks == 1
        # The quarantined execution ran in the parent process.
        assert results[2]["pid"] == os.getpid()
        assert not pool.disabled

    def test_strict_mode_raises_instead_of_retrying(self):
        pool = pool_mod.WorkerPool(2, strict=True)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.map_tasks("chaos_probe", [{"action": "kill", "value": 0}])
            assert excinfo.value.task_kind == "chaos_probe"
            assert excinfo.value.payload_index == 0
        finally:
            pool.close()


class TestHangDetection:
    def test_transient_hang_is_killed_and_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "HANG_TIMEOUT", 0.5)
        pool = get_pool(2)
        payloads = _echoes(3)
        payloads[1] = {
            "action": "hang",
            "value": 1,
            "marker": str(tmp_path / "hang-once"),
        }
        results = pool.map_tasks("chaos_probe", payloads)
        assert _values(results) == [0, 1, 2]
        assert pool.stats.heartbeat_misses >= 1
        assert pool.stats.respawns >= 1

    def test_poison_hang_is_quarantined(self, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "HANG_TIMEOUT", 0.5)
        pool = get_pool(2)
        results = pool.map_tasks("chaos_probe", [{"action": "hang", "value": 9}])
        assert _values(results) == [9]
        assert pool.stats.quarantined == 1
        assert results[0]["pid"] == os.getpid()

    def test_hang_timeout_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANG_TIMEOUT", "12.5")
        assert supervisor_mod._hang_timeout_default() == 12.5
        monkeypatch.setenv("REPRO_HANG_TIMEOUT", "nope")
        with pytest.raises(InputError):
            supervisor_mod._hang_timeout_default()
        monkeypatch.setenv("REPRO_HANG_TIMEOUT", "0")
        with pytest.raises(InputError):
            supervisor_mod._hang_timeout_default()


class TestGracefulDegradation:
    def test_respawn_exhaustion_disables_pool(self, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "RESPAWN_LIMIT", 0)
        pool = get_pool(2)
        payloads = _echoes(3)
        payloads[0] = {"action": "kill", "value": 0}
        results = pool.map_tasks("chaos_probe", payloads)
        assert _values(results) == [0, 1, 2]
        assert pool.disabled
        assert pool.stats.pool_disabled == 1
        # Later batches run serially in-process, still correct.
        probe = pool.map_tasks("pool_probe", [{"value": 7}])
        assert probe[0]["value"] == 7
        assert probe[0]["pid"] == os.getpid()
        assert probe[0]["in_worker"] is False

    def test_respawned_worker_still_refuses_nesting(self, tmp_path):
        pool = get_pool(2)
        payloads = [
            {
                "action": "kill",
                "value": 0,
                "marker": str(tmp_path / "nest-once"),
            }
        ]
        pool.map_tasks("chaos_probe", payloads)
        assert pool.stats.respawns >= 1
        probes = pool.map_tasks("pool_probe", [{"value": i} for i in range(4)])
        for probe in probes:
            assert probe["in_worker"] is True
            assert probe["resolved_workers"] == 1


class TestWorkerFaultPlans:
    def test_from_seed_never_picks_worker_modes(self):
        for seed in range(64):
            assert FaultPlan.from_seed(seed).mode in PROCESS_FAULT_MODES

    def test_worker_mode_is_noop_in_parent(self):
        plan = FaultPlan(mode="worker_kill", at_tick=1)
        governor = Governor(Budget(check_interval=1), fault_plan=plan)
        with activate(governor):
            for _ in range(100):
                checkpoint("parent-stage")
        assert not plan.fired  # still alive, nothing fired

    @pytest.mark.parametrize("mode", WORKER_FAULT_MODES)
    def test_fault_fires_once_and_pool_heals(self, mode, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "HANG_TIMEOUT", 0.75)
        plan = FaultPlan(mode=mode, at_tick=2)
        governor = Governor(Budget(check_interval=1), fault_plan=plan)
        pool = get_pool(2)
        payloads = [{"ticks": 5, "value": index} for index in range(4)]
        with activate(governor):
            results = pool.map_tasks("pool_probe", payloads)
        assert [result["value"] for result in results] == [0, 1, 2, 3]
        assert plan.fired
        assert plan.fired_at_stage == "worker"
        assert pool.stats.worker_faults_fired == 1
        assert pool.stats.respawns >= 1


class TestTracebackPreservation:
    def test_raw_error_surfaces_remote_traceback(self):
        pool = get_pool(2)
        with pytest.raises(WorkerError) as excinfo:
            pool.map_tasks(
                "chaos_probe",
                [{"action": "raise_value", "message": "broke remotely"}],
            )
        error = excinfo.value
        assert "chaos_probe" in str(error)
        assert error.remote_traceback is not None
        assert "ValueError" in error.remote_traceback
        assert "broke remotely" in error.remote_traceback
        assert error.__cause__ is not None
        assert "broke remotely" in str(error.__cause__)

    def test_taxonomy_errors_rethrow_with_chained_cause(self):
        pool = get_pool(2)
        with pytest.raises(InputError, match="bad shard input") as excinfo:
            pool.map_tasks(
                "chaos_probe",
                [{"action": "raise_input", "message": "bad shard input"}],
            )
        assert excinfo.value.__cause__ is not None
        assert "InputError" in str(excinfo.value.__cause__)


class TestSegmentReaper:
    def test_dead_owner_segments_are_reaped_live_ones_kept(self):
        from multiprocessing import shared_memory
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead_name = f"{SEGMENT_PREFIX}-{proc.pid}-deadbeef"
        orphan = shared_memory.SharedMemory(
            create=True, size=16, name=dead_name
        )
        orphan.close()
        live_name = f"{SEGMENT_PREFIX}-{os.getpid()}-cafe0001"
        live = shared_memory.SharedMemory(create=True, size=16, name=live_name)
        try:
            assert reap_orphan_segments() >= 1
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=dead_name)
            survivor = shared_memory.SharedMemory(name=live_name)
            survivor.close()
        finally:
            live.close()
            try:
                live.unlink()
            except FileNotFoundError:
                pass


def _shm_leftovers():
    prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    except OSError:  # pragma: no cover - no scannable shm dir
        return []


class TestAcceptance:
    def test_hyfd_cover_identical_after_worker_kill_no_shm_leak(
        self, monkeypatch
    ):
        """A SIGKILLed worker mid-batch: identical cover, clean /dev/shm."""
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
        instance = plant_instance(7, num_columns=6, num_rows=60).instance
        serial = HyFD().discover(instance)

        plan = FaultPlan(mode="worker_kill", at_tick=3)
        governor = Governor(Budget(check_interval=1), fault_plan=plan)
        algorithm = HyFD(workers=2)
        with activate(governor):
            healed = algorithm.discover(instance)
        assert list(serial.items()) == list(healed.items())
        assert plan.fired
        stats = algorithm.last_pool_stats
        assert stats is not None and stats.worker_faults_fired == 1
        shutdown_pool()
        assert not owned_segments()
        assert _shm_leftovers() == []

    def test_small_worker_fault_campaign_passes(self):
        from repro.verification.faults_campaign import run_fault_campaign

        report = run_fault_campaign(
            range(4), num_rows=25, max_columns=5, workers=2
        )
        assert report.ok, report.to_str()
        assert report.worker_faults >= 1
        assert report.respawns + report.quarantined >= 1
