"""Tests for HyUCC (hybrid unique column combination discovery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.hyucc import HyUCC
from repro.discovery.ucc import NaiveUCC, discover_uccs


class TestEquivalence:
    @given(
        st.integers(min_value=0, max_value=1_000_000),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=25),
        st.sampled_from([1, 2, 3, 5]),
        st.sampled_from([0.0, 0.0, 0.3]),
    )
    @settings(max_examples=30)
    def test_matches_naive(self, seed, cols, rows, domain, null_rate):
        instance = random_instance(seed, cols, rows, domain, null_rate)
        assert sorted(HyUCC().discover(instance)) == sorted(
            NaiveUCC().discover(instance)
        )

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15)
    def test_null_semantics(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2, null_rate=0.3)
        assert sorted(HyUCC(null_equals_null=False).discover(instance)) == sorted(
            NaiveUCC(null_equals_null=False).discover(instance)
        )

    def test_zero_switch_threshold(self):
        instance = random_instance(5, 5, 20, domain_size=2)
        assert sorted(HyUCC(switch_threshold=0.0).discover(instance)) == sorted(
            NaiveUCC().discover(instance)
        )


class TestEdges:
    def test_empty_relation(self):
        instance = random_instance(0, 3, 0)
        assert HyUCC().discover(instance) == [0]

    def test_single_row(self):
        instance = random_instance(0, 3, 1)
        assert HyUCC().discover(instance) == [0]

    def test_no_key_possible(self):
        instance = random_instance(0, 2, 0)
        instance.columns_data[0] = [1, 1]
        instance.columns_data[1] = [2, 2]
        assert HyUCC().discover(instance) == []

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HyUCC(switch_threshold=2.0)

    def test_front_door(self):
        instance = random_instance(3, 4, 12, domain_size=3)
        assert sorted(discover_uccs(instance, "hyucc")) == sorted(
            discover_uccs(instance, "naive")
        )

    def test_profile_dataset(self):
        from repro.datagen.profiles import plista_like

        instance = plista_like(num_rows=150)
        uccs = HyUCC().discover(instance)
        event_id = 1 << instance.relation.column_index("event_id")
        assert event_id in uccs
