"""Unit tests for RelationInstance."""

import pytest

from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def make(rows, columns=("a", "b", "c")):
    return RelationInstance.from_rows(Relation("t", columns), rows)


class TestConstruction:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            RelationInstance(Relation("t", ("a", "b")), [[1], [1, 2]])

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            RelationInstance(Relation("t", ("a", "b")), [[1]])

    def test_from_rows_row_width_checked(self):
        with pytest.raises(ValueError, match="width"):
            make([(1, 2)])

    def test_empty_instance(self):
        instance = make([])
        assert instance.num_rows == 0
        assert instance.num_values == 0

    def test_counters(self):
        instance = make([(1, 2, 3), (4, 5, 6)])
        assert instance.num_rows == 2
        assert instance.arity == 3
        assert instance.num_values == 6


class TestAccess:
    def test_column_by_name_and_index(self):
        instance = make([(1, 2, 3)])
        assert instance.column("b") == [2]
        assert instance.column(2) == [3]

    def test_row_and_iter_rows(self):
        instance = make([(1, 2, 3), (4, 5, 6)])
        assert instance.row(1) == (4, 5, 6)
        assert list(instance.iter_rows()) == [(1, 2, 3), (4, 5, 6)]


class TestProjection:
    def test_project_keeps_column_order(self):
        instance = make([(1, 2, 3), (4, 5, 6)])
        projected = instance.project(0b101, name="p")
        assert projected.columns == ("a", "c")
        assert list(projected.iter_rows()) == [(1, 3), (4, 6)]

    def test_project_dedup(self):
        instance = make([(1, 2, 3), (1, 2, 9), (1, 2, 3)])
        projected = instance.project(0b011, dedup=True)
        assert list(projected.iter_rows()) == [(1, 2)]

    def test_project_dedup_preserves_first_occurrence_order(self):
        instance = make([(2, 0, 0), (1, 0, 0), (2, 0, 0)])
        projected = instance.project(0b001, dedup=True)
        assert list(projected.iter_rows()) == [(2,), (1,)]


class TestStatistics:
    def test_has_null_in(self):
        instance = make([(1, None, 3)])
        assert instance.has_null_in(0b010)
        assert not instance.has_null_in(0b101)

    def test_max_value_length_single(self):
        instance = make([("abc", "x", 1), ("ab", "y", 2)])
        assert instance.max_value_length(0b001) == 3

    def test_max_value_length_concatenates(self):
        instance = make([("abc", "xy", 1)])
        assert instance.max_value_length(0b011) == 5

    def test_max_value_length_null_counts_as_empty(self):
        instance = make([(None, "xy", 1)])
        assert instance.max_value_length(0b011) == 2

    def test_max_value_length_empty_cases(self):
        assert make([]).max_value_length(0b1) == 0
        assert make([(1, 2, 3)]).max_value_length(0) == 0

    def test_distinct_count(self):
        instance = make([(1, 2, 3), (1, 2, 9), (1, 5, 3)])
        assert instance.distinct_count(0b011) == 2
        assert instance.distinct_count(0b111) == 3

    def test_distinct_count_empty_mask(self):
        assert make([(1, 2, 3)]).distinct_count(0) == 1
        assert make([]).distinct_count(0) == 0

    def test_full_mask(self):
        assert make([]).full_mask() == 0b111

    def test_rename_copies_relation_object(self):
        instance = make([(1, 2, 3)])
        renamed = instance.rename("other")
        assert renamed.name == "other"
        assert list(renamed.iter_rows()) == list(instance.iter_rows())
        renamed.relation.primary_key = ("a",)
        assert instance.relation.primary_key is None
