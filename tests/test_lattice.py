"""Unit and property tests for the generic minimal-boundary lattice search."""

from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.lattice import find_minimal_satisfying
from repro.model.attributes import full_mask


def monotone_predicate_from_seeds(seeds):
    """Upward-monotone predicate: satisfied iff some seed is contained."""

    def predicate(mask):
        return any(seed & ~mask == 0 for seed in seeds)

    return predicate


def reference_minimal(seeds):
    minimal = []
    for seed in sorted(set(seeds), key=lambda m: m.bit_count()):
        if not any(kept & ~seed == 0 for kept in minimal):
            minimal.append(seed)
    return sorted(minimal)


class TestBoundaries:
    def test_empty_set_satisfies(self):
        result = find_minimal_satisfying(lambda mask: True, 0b111)
        assert result == [0]

    def test_nothing_satisfies(self):
        result = find_minimal_satisfying(lambda mask: False, 0b111)
        assert result == []

    def test_single_seed(self):
        predicate = monotone_predicate_from_seeds([0b011])
        assert find_minimal_satisfying(predicate, 0b111) == [0b011]

    def test_full_universe_only(self):
        predicate = monotone_predicate_from_seeds([0b111])
        assert find_minimal_satisfying(predicate, 0b111) == [0b111]


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=2**8 - 1),
            min_size=1,
            max_size=6,
        ),
        st.booleans(),
    )
    def test_recovers_exactly_the_minimal_seeds(self, seeds, use_walks):
        universe = full_mask(8)
        predicate = monotone_predicate_from_seeds(seeds)
        result = find_minimal_satisfying(
            predicate,
            universe,
            seed=17,
            random_walks=6 if use_walks else 0,
        )
        assert sorted(result) == reference_minimal(seeds)

    @given(st.integers(min_value=0, max_value=1000))
    def test_deterministic_given_seed(self, seed):
        seeds = [0b0110, 0b1001, 0b0011]
        predicate = monotone_predicate_from_seeds(seeds)
        first = find_minimal_satisfying(predicate, 0b1111, seed=seed, random_walks=4)
        second = find_minimal_satisfying(predicate, 0b1111, seed=seed, random_walks=4)
        assert first == second

    def test_predicate_evaluation_count_is_bounded(self):
        # The classifier memoizes: no mask is evaluated twice.
        calls = []

        def predicate(mask):
            calls.append(mask)
            return mask & 0b11 == 0b11

        find_minimal_satisfying(predicate, full_mask(6), random_walks=8, seed=3)
        assert len(calls) == len(set(calls))
