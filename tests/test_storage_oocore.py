"""The out-of-core columnar store: policy registry, chunked ingestion,
spill-tier parity, and the end-to-end byte-identity guarantees.

The contract under test (ISSUE 10 acceptance criteria): every artifact
the pipeline produces — codes, cardinalities, null codes, discovered
covers, DDL — is **byte-identical** whether encoded columns live on the
Python heap, were chunk-ingested, or spilled to mmap-backed page files;
the spill path additionally keeps the encoder's staging heap O(chunk).
"""

from __future__ import annotations

import os
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

from repro.cli import main
from repro.io.csv_io import read_csv, write_csv
from repro.io.datasets import (
    address_example,
    denormalized_university,
    planets_example,
)
from repro.model.instance import RelationInstance
from repro.runtime.errors import InputError
from repro.runtime.governor import Budget, Governor, activate
from repro.structures import storage
from repro.structures.encoding import ChunkedEncoder, EncodedRelation

# ----------------------------------------------------------------------
# Hygiene: every test starts with a clean policy and counters
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _clean_storage_state(monkeypatch):
    monkeypatch.delenv("REPRO_STORAGE", raising=False)
    monkeypatch.delenv("REPRO_SPILL_THRESHOLD", raising=False)
    monkeypatch.delenv("REPRO_CHUNK_ROWS", raising=False)
    storage.set_policy(None)
    storage.reset_counters()
    yield
    storage.set_policy(None)
    storage.reset_counters()


def _codes_as_lists(encoding: EncodedRelation) -> list[list[int]]:
    return [list(column) for column in encoding.codes]


def _assert_encodings_identical(
    left: EncodedRelation, right: EncodedRelation
) -> None:
    assert _codes_as_lists(left) == _codes_as_lists(right)
    assert left.cardinalities == right.cardinalities
    assert left.null_codes == right.null_codes
    assert left.num_rows == right.num_rows
    assert left.null_equals_null == right.null_equals_null


FIXTURES = {
    "address": address_example,
    "planets": planets_example,
    "university": denormalized_university,
}


def _nullable_instance() -> RelationInstance:
    base = address_example()
    columns = [list(column) for column in base.columns_data]
    columns[0][1] = None
    columns[2][0] = None
    columns[2][3] = None
    return RelationInstance(base.relation, columns)


FIXTURES["nullable"] = _nullable_instance


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
class TestPolicyRegistry:
    def test_default_is_memory(self):
        assert storage.policy_name() == "memory"

    def test_env_selects_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "spill")
        assert storage.policy_name() == "spill"

    def test_set_policy_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "spill")
        storage.set_policy("memory")
        assert storage.policy_name() == "memory"

    def test_unknown_policy_is_input_error(self):
        with pytest.raises(InputError):
            storage.set_policy("floppy")
        with pytest.raises(InputError):
            storage.ensure_policy("floppy")

    def test_bad_env_policy_is_input_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "floppy")
        with pytest.raises(InputError):
            storage.policy_name()

    def test_override_nests_and_restores(self):
        assert storage.policy_name() == "memory"
        with storage.policy_override("spill"):
            assert storage.policy_name() == "spill"
            with storage.policy_override("auto"):
                assert storage.policy_name() == "auto"
            assert storage.policy_name() == "spill"
        assert storage.policy_name() == "memory"

    def test_none_override_is_a_no_op(self):
        with storage.policy_override(None):
            assert storage.policy_name() == "memory"

    def test_resolve_tier_by_policy(self, monkeypatch):
        assert storage.resolve_tier(1 << 40) == "memory"
        with storage.policy_override("spill"):
            assert storage.resolve_tier(1) == "spill"
        with storage.policy_override("auto"):
            monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "1kb")
            assert storage.resolve_tier(2048) == "spill"
            assert storage.resolve_tier(16) == "memory"

    def test_memory_budget_feeds_auto_threshold(self):
        with storage.policy_override("auto"):
            with storage.memory_budget(400):
                # budget/4 = 100 bytes
                assert storage.resolve_tier(101) == "spill"
                assert storage.resolve_tier(99) == "memory"

    def test_governor_budget_feeds_auto_threshold(self):
        governor = Governor(Budget(max_memory_bytes=400))
        with activate(governor), storage.policy_override("auto"):
            assert storage.resolve_tier(101) == "spill"

    def test_chunk_rows_env(self, monkeypatch):
        assert storage.chunk_rows() == 4096
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "7")
        assert storage.chunk_rows() == 7
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "zero")
        with pytest.raises(InputError):
            storage.chunk_rows()


# ----------------------------------------------------------------------
# Encode parity: every fixture, both NULL semantics
# ----------------------------------------------------------------------
class TestEncodeParity:
    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    @pytest.mark.parametrize("null_equals_null", [True, False])
    def test_spilled_encode_is_byte_identical(
        self, fixture, null_equals_null
    ):
        instance = FIXTURES[fixture]()
        mem = EncodedRelation.encode(instance.columns_data, null_equals_null)
        with storage.policy_override("spill"):
            spilled = EncodedRelation.encode(
                instance.columns_data, null_equals_null
            )
        assert mem.tier == "memory"
        assert spilled.tier == "spill"
        _assert_encodings_identical(mem, spilled)
        spilled.store.close()

    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    @pytest.mark.parametrize("null_equals_null", [True, False])
    def test_chunked_encoder_matches_encode(self, fixture, null_equals_null):
        instance = FIXTURES[fixture]()
        mem = EncodedRelation.encode(instance.columns_data, null_equals_null)
        rows = list(zip(*instance.columns_data))
        with storage.policy_override("spill"):
            encoder = ChunkedEncoder(
                instance.arity, null_equals_null=null_equals_null
            )
            for start in range(0, len(rows), 3):
                encoder.add_rows(rows[start : start + 3])
            chunked = encoder.finish()
        _assert_encodings_identical(mem, chunked)
        # The decode tables invert the dictionaries exactly.
        tables = encoder.decode_tables()
        for attr, column in enumerate(instance.columns_data):
            decoded = [tables[attr][code] for code in chunked.codes[attr]]
            if null_equals_null:
                assert decoded == list(column)
        chunked.store.close()

    @pytest.mark.parametrize("policy", ["spill", "auto"])
    def test_streaming_read_csv_matches_classic(
        self, tmp_path, monkeypatch, policy
    ):
        instance = denormalized_university()
        path = tmp_path / "u.csv"
        write_csv(instance, path)
        classic = read_csv(path)
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "5")
        if policy == "auto":
            monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "64")
        with storage.policy_override(policy):
            streamed = read_csv(path)
        assert streamed.columns == classic.columns
        assert [list(c) for c in streamed.columns_data] == [
            list(c) for c in classic.columns_data
        ]
        for semantics in (True, False):
            _assert_encodings_identical(
                classic.encoded(semantics), streamed.encoded(semantics)
            )
        assert streamed.encoded(True).tier == "spill"


# ----------------------------------------------------------------------
# Chunked ingestion stays O(chunk)
# ----------------------------------------------------------------------
class TestChunkedIngestion:
    def test_peak_staging_is_bounded_by_chunk_and_page(
        self, tmp_path, monkeypatch
    ):
        rows, arity = 5000, 4
        path = tmp_path / "big.csv"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("a,b,c,d\n")
            for i in range(rows):
                handle.write(f"{i % 97},{i % 13},{i},{i % 7}\n")
        chunk = 64
        monkeypatch.setenv("REPRO_CHUNK_ROWS", str(chunk))
        # A "memory budget" far below the encoded footprint: the run
        # must complete by spilling, never by staging everything.
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "1kb")
        storage.reset_counters()
        with storage.policy_override("auto"):
            instance = read_csv(path)
            encoding = instance.encoded(True)
        assert encoding.tier == "spill"
        assert encoding.num_rows == rows
        peak = storage.peak_buffered_cells()
        assert peak > 0
        # Staged cells never exceed one flush page plus one input chunk
        # per column — independent of the 5000-row dataset size.
        assert peak <= (storage.PAGE_ROWS + chunk) * arity
        counters = storage.counters_snapshot()
        assert counters["spill_columns"] == arity
        assert counters["spill_pages_written"] >= arity
        assert counters["spill_cells_written"] == rows * arity

    def test_auto_policy_keeps_small_relations_in_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "1gb")
        with storage.policy_override("auto"):
            encoding = EncodedRelation.encode(
                address_example().columns_data, True
            )
        assert encoding.tier == "memory"

    def test_finish_twice_raises(self):
        encoder = ChunkedEncoder(2)
        encoder.add_rows([("x", "y")])
        encoder.finish()
        with pytest.raises(ValueError):
            encoder.finish()

    def test_governor_counts_spills(self):
        governor = Governor(Budget(max_memory_bytes=1 << 30))
        with activate(governor), storage.policy_override("spill"):
            encoding = EncodedRelation.encode(
                address_example().columns_data, True
            )
        assert governor.spills == 1
        encoding.store.close()


# ----------------------------------------------------------------------
# Mutation parity: extend / remove_rows against spilled stores
# ----------------------------------------------------------------------
class TestMutationParity:
    def _pair(self):
        instance = address_example()
        mem = EncodedRelation.encode(instance.columns_data, True)
        with storage.policy_override("spill"):
            spilled = EncodedRelation.encode(instance.columns_data, True)
        return instance, mem, spilled

    def test_extend_parity(self):
        instance, mem, spilled = self._pair()
        delta = [
            ["Zoe", "Max"],
            ["90210", "10001"],
            ["Beverly", "NYC"],
            ["CA", "NY"],
        ][: instance.arity]
        while len(delta) < instance.arity:
            delta.append(["x", "y"])
        mem.extend(delta)
        spilled.extend(delta)
        _assert_encodings_identical(mem, spilled)
        spilled.store.close()

    def test_remove_rows_parity(self):
        instance, mem, spilled = self._pair()
        mem.remove_rows([0, 2])
        spilled.remove_rows([0, 2])
        _assert_encodings_identical(mem, spilled)
        spilled.store.close()

    def test_interleaved_generations_parity(self):
        instance, mem, spilled = self._pair()
        delta = [[f"v{attr}-{row}" for row in range(3)] for attr in range(instance.arity)]
        for encoding in (mem, spilled):
            encoding.extend(delta)
            encoding.remove_rows([1, encoding.num_rows - 1])
            encoding.extend(delta)
        _assert_encodings_identical(mem, spilled)
        spilled.store.close()

    def test_ragged_extend_rejected_before_any_write(self):
        _, mem, spilled = self._pair()
        bad = [["a"], ["b", "extra"]] + [["c"]] * (spilled.arity - 2)
        with pytest.raises(ValueError):
            spilled.extend(bad)
        # Nothing was appended: still identical to the untouched twin.
        _assert_encodings_identical(mem, spilled)
        spilled.store.close()


# ----------------------------------------------------------------------
# End-to-end byte identity: covers and DDL
# ----------------------------------------------------------------------
class TestPipelineByteIdentity:
    @pytest.fixture()
    def university_csv(self, tmp_path):
        path = tmp_path / "university.csv"
        write_csv(denormalized_university(), path)
        return path

    def test_ddl_identical_under_spill(
        self, university_csv, tmp_path, monkeypatch, capsys
    ):
        ddl_mem = tmp_path / "mem.sql"
        ddl_spill = tmp_path / "spill.sql"
        assert main([str(university_csv), "--ddl", str(ddl_mem)]) == 0
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "7")
        assert (
            main(
                [
                    str(university_csv),
                    "--storage",
                    "spill",
                    "--ddl",
                    str(ddl_spill),
                ]
            )
            == 0
        )
        assert ddl_mem.read_bytes() == ddl_spill.read_bytes()

    def test_ddl_identical_with_workers_against_spilled_columns(
        self, university_csv, tmp_path, monkeypatch, capsys
    ):
        ddl_serial = tmp_path / "serial.sql"
        ddl_pool = tmp_path / "pool.sql"
        assert main([str(university_csv), "--ddl", str(ddl_serial)]) == 0
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "7")
        assert (
            main(
                [
                    str(university_csv),
                    "--storage",
                    "spill",
                    "--workers",
                    "2",
                    "--ddl",
                    str(ddl_pool),
                ]
            )
            == 0
        )
        assert ddl_serial.read_bytes() == ddl_pool.read_bytes()

    def test_profile_reports_spill_counters(
        self, university_csv, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "9")
        assert (
            main([str(university_csv), "--profile", "--storage", "spill"])
            == 0
        )
        out = capsys.readouterr().out
        assert "storage_policy=spill" in out
        assert "storage_tier=spill" in out
        assert "spill_pages_written=" in out

    def test_auto_completes_under_tight_memory_budget(
        self, tmp_path, monkeypatch, capsys
    ):
        """A dataset whose encoded footprint exceeds the configured
        budget by >= 4x completes under auto with O(chunk) staging."""
        rows, arity = 4000, 4
        path = tmp_path / "wide.csv"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("a,b,c,d\n")
            for i in range(rows):
                handle.write(f"{i % 53},{i % 11},{i},{i % 5}\n")
        encoded_bytes = 4 * rows * arity  # 64000
        budget = encoded_bytes // 4  # spill threshold = budget/4 = 4000
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", str(budget // 4))
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "128")
        storage.reset_counters()
        ddl_mem = tmp_path / "mem.sql"
        ddl_auto = tmp_path / "auto.sql"
        assert main([str(path), "--ddl", str(ddl_mem)]) == 0
        assert (
            main([str(path), "--storage", "auto", "--ddl", str(ddl_auto)])
            == 0
        )
        assert ddl_mem.read_bytes() == ddl_auto.read_bytes()
        assert storage.counters_snapshot()["spill_columns"] >= arity
        assert storage.peak_buffered_cells() <= (
            (storage.PAGE_ROWS + 128) * arity
        )


# ----------------------------------------------------------------------
# Parallel workers attach spilled pages like shm segments
# ----------------------------------------------------------------------
class TestWorkerAttachment:
    def test_export_attach_round_trip(self):
        from repro.parallel.shm import attach_encoding, export_encoding

        instance = denormalized_university()
        with storage.policy_override("spill"):
            spilled = EncodedRelation.encode(instance.columns_data, True)
        handle_holder = export_encoding(spilled)
        assert isinstance(handle_holder, storage.SpilledRelation)
        attached, attachment = attach_encoding(handle_holder.handle)
        try:
            mem = EncodedRelation.encode(instance.columns_data, True)
            _assert_encodings_identical(mem, attached)
        finally:
            attachment.close()
            spilled.store.close()

    def test_segment_key_changes_across_generations(self):
        instance = address_example()
        with storage.policy_override("spill"):
            spilled = EncodedRelation.encode(instance.columns_data, True)
        key_before = spilled.store.handle(spilled).segment
        delta = [["q"] for _ in range(instance.arity)]
        spilled.extend(delta)
        key_after = spilled.store.handle(spilled).segment
        assert key_before != key_after
        spilled.store.close()


# ----------------------------------------------------------------------
# Spill directory lifecycle
# ----------------------------------------------------------------------
class TestSpillLifecycle:
    def test_orphan_reaper_removes_dead_owner_dirs(self, tmp_path):
        dead = tmp_path / f"{storage.SPILL_PREFIX}-999999999-dead"
        dead.mkdir()
        (dead / "store-0").mkdir()
        (dead / "store-0" / "col0-g0.i32").write_bytes(b"\0" * 8)
        live = tmp_path / f"{storage.SPILL_PREFIX}-{os.getpid()}-live"
        live.mkdir()
        unrelated = tmp_path / "keep-me"
        unrelated.mkdir()
        removed = storage.reap_orphan_spill_dirs(tmp_path)
        assert removed == 1
        assert not dead.exists()
        assert live.exists()
        assert unrelated.exists()

    def test_release_process_spill_removes_own_dir(
        self, tmp_path, monkeypatch
    ):
        storage.release_process_spill()  # drop any cached dir from earlier tests
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        with storage.policy_override("spill"):
            encoding = EncodedRelation.encode(
                address_example().columns_data, True
            )
        spill_dirs = list(tmp_path.glob(f"{storage.SPILL_PREFIX}-*"))
        assert len(spill_dirs) == 1
        # Live mappings stay readable after the unlink (POSIX).
        assert storage.release_process_spill() == 1
        assert not spill_dirs[0].exists()
        assert list(encoding.codes[0])  # still readable
        encoding.store.close()

    def test_spill_dir_override_routes_stores(self, tmp_path):
        target = tmp_path / "session" / "spill"
        with storage.spill_dir_override(target), storage.policy_override(
            "spill"
        ):
            encoding = EncodedRelation.encode(
                address_example().columns_data, True
            )
        assert encoding.store.directory.parent == target
        encoding.store.close()

    def test_resume_with_stale_spill_dir_present(
        self, tmp_path, monkeypatch, capsys
    ):
        """A crashed run's spill directory must not confuse a resumed
        run: the resume completes and produces the memory-policy DDL."""
        csv_path = tmp_path / "u.csv"
        write_csv(denormalized_university(), csv_path)
        ddl_mem = tmp_path / "mem.sql"
        assert main([str(csv_path), "--ddl", str(ddl_mem)]) == 0

        spill_base = tmp_path / "spillbase"
        spill_base.mkdir()
        stale = spill_base / f"{storage.SPILL_PREFIX}-999999999-stale"
        stale.mkdir()
        (stale / "store-0").mkdir()
        (stale / "store-0" / "col0-g0.i32").write_bytes(b"\0" * 64)
        monkeypatch.setenv("REPRO_SPILL_DIR", str(spill_base))

        checkpoint = tmp_path / "run.ckpt"
        ddl_first = tmp_path / "first.sql"
        assert (
            main(
                [
                    str(csv_path),
                    "--storage",
                    "spill",
                    "--checkpoint",
                    str(checkpoint),
                    "--ddl",
                    str(ddl_first),
                ]
            )
            == 0
        )
        ddl_resumed = tmp_path / "resumed.sql"
        assert (
            main(
                [
                    str(csv_path),
                    "--storage",
                    "spill",
                    "--resume",
                    str(checkpoint),
                    "--ddl",
                    str(ddl_resumed),
                ]
            )
            == 0
        )
        assert ddl_resumed.read_bytes() == ddl_mem.read_bytes()
        # The stale orphan is reclaimed by the worker-pool reaper path.
        storage.reap_orphan_spill_dirs(spill_base)
        assert not stale.exists()

    def test_resume_after_kill_with_spill(self, tmp_path):
        """Kill a spilled run mid-flight, then resume from its
        checkpoint under the same spill policy: identical DDL, and the
        dead process's spill directory is reapable."""
        csv_path = tmp_path / "u.csv"
        write_csv(denormalized_university(), csv_path)
        ddl_mem = tmp_path / "mem.sql"
        assert main([str(csv_path), "--ddl", str(ddl_mem)]) == 0

        spill_base = tmp_path / "spillbase"
        spill_base.mkdir()
        checkpoint = tmp_path / "run.ckpt"
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"),
            REPRO_SPILL_DIR=str(spill_base),
            REPRO_STORAGE="spill",
        )
        script = (
            "import sys\n"
            "from repro.cli import main\n"
            "sys.exit(main(sys.argv[1:]))\n"
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                script,
                str(csv_path),
                "--checkpoint",
                str(checkpoint),
                "--ddl",
                str(tmp_path / "never.sql"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Kill as soon as the process had a chance to start spilling.
        import time

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if list(spill_base.glob(f"{storage.SPILL_PREFIX}-*")):
                proc.kill()
                break
            time.sleep(0.01)
        proc.wait(timeout=30)

        ddl_resumed = tmp_path / "resumed.sql"
        args = [str(csv_path), "--ddl", str(ddl_resumed), "--storage", "spill"]
        if checkpoint.exists():
            args += ["--resume", str(checkpoint)]
        result = subprocess.run(
            [sys.executable, "-c", script, *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert ddl_resumed.read_bytes() == ddl_mem.read_bytes()
        # Whatever the killed process stranded is attributable and dies
        # with the reaper (the resumed run's own dir is gone already —
        # its atexit hook released it).
        storage.reap_orphan_spill_dirs(spill_base)
        leftovers = [
            entry
            for entry in spill_base.glob(f"{storage.SPILL_PREFIX}-*")
            if entry.is_dir()
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Approximate discovery (--approximate)
# ----------------------------------------------------------------------
class TestApproximateMode:
    def test_sampled_g3_is_sound_at_zero_error(self):
        from repro.discovery.hyfd import HyFD
        from repro.discovery.sampled import SampledG3FD

        from .helpers import canon_fds, fd_holds

        instance = denormalized_university()
        algorithm = SampledG3FD(sample_rows=5, approx_error=0.0, seed=3)
        fds = algorithm.discover(instance)
        assert algorithm.last_sampled_rows == 5
        exact = canon_fds(HyFD().discover(instance))
        for lhs, attr in canon_fds(fds):
            assert fd_holds(instance, lhs, 1 << attr)
            assert algorithm.last_errors[(lhs, attr)] == 0.0
        assert canon_fds(fds) <= exact

    def test_positive_error_keeps_approximate_fds(self):
        from repro.discovery.sampled import SampledG3FD

        columns = [
            ["k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"],
            ["a", "a", "a", "a", "b", "b", "b", "z"],
        ]
        # col0 -> col1 holds exactly; col1 -> col0 has g3 > 0.
        from repro.model.schema import Relation

        instance = RelationInstance(
            Relation("t", ("x", "y")), columns
        )
        algorithm = SampledG3FD(sample_rows=4, approx_error=0.5, seed=1)
        algorithm.discover(instance)
        assert all(
            error <= 0.5 for error in algorithm.last_errors.values()
        )

    def test_cli_reports_bounds(self, tmp_path, capsys):
        csv_path = tmp_path / "u.csv"
        write_csv(denormalized_university(), csv_path)
        assert (
            main([str(csv_path), "--approximate", "--sample-rows", "6"]) == 0
        )
        out = capsys.readouterr().out
        assert "approximate discovery (g3 error bounds)" in out
        assert "g3=" in out

    def test_cli_profile_reports_bounds(self, tmp_path, capsys):
        csv_path = tmp_path / "u.csv"
        write_csv(denormalized_university(), csv_path)
        assert (
            main(
                [
                    str(csv_path),
                    "--profile",
                    "--approximate",
                    "--sample-rows",
                    "6",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "approximate FDs (g3 error bounds):" in out
        assert "fd_sampled_rows=6" in out

    def test_approximate_conflicts_with_load_fds(self, tmp_path):
        csv_path = tmp_path / "u.csv"
        write_csv(denormalized_university(), csv_path)
        with pytest.raises(SystemExit):
            main(
                [
                    str(csv_path),
                    "--approximate",
                    "--load-fds",
                    str(tmp_path / "whatever.json"),
                ]
            )

    def test_exact_when_sample_covers_relation(self, capsys, tmp_path):
        from repro.discovery.hyfd import HyFD
        from repro.discovery.sampled import SampledG3FD

        from .helpers import canon_fds

        instance = address_example()
        algorithm = SampledG3FD(sample_rows=10_000)
        fds = algorithm.discover(instance)
        assert algorithm.last_sampled_rows is None
        assert canon_fds(fds) == canon_fds(HyFD().discover(instance))


# ----------------------------------------------------------------------
# Server: streamed uploads + spilled sessions
# ----------------------------------------------------------------------
class TestServerSpill:
    def _csv_bytes(self, rows: int = 300) -> bytes:
        lines = ["emp,dept,mgr"]
        for i in range(rows):
            lines.append(f"{i},{i % 5},m{i % 5}")
        return ("\n".join(lines) + "\n").encode()

    def test_spooled_upload_matches_buffered_upload(self, tmp_path):
        from .test_server import ServerThread

        payload = self._csv_bytes()
        with ServerThread(
            resume_dir=str(tmp_path / "state"), spool_threshold_bytes=64
        ) as harness:
            client = harness.client("alice")
            info = client.create_session(payload, name="emp", session="s1")
            assert info["rows"] == 300
            ddl_spooled = client.ddl("s1")
            # The upload was streamed to disk, then *moved* into the
            # session directory — bytes intact.
            dataset = tmp_path / "state" / "alice" / "s1" / "dataset.csv"
            assert dataset.read_bytes() == payload
            # No spool file leaks behind.
            spool = tmp_path / "state" / ".spool"
            assert not any(spool.glob("*")) if spool.exists() else True
        with ServerThread(resume_dir=str(tmp_path / "state2")) as harness:
            client = harness.client("alice")
            client.create_session(payload, name="emp", session="s1")
            ddl_buffered = client.ddl("s1")
        assert ddl_spooled == ddl_buffered

    def test_spilled_session_ddl_matches_memory_session(self, tmp_path):
        from .test_server import ServerThread

        payload = self._csv_bytes()
        with ServerThread(
            resume_dir=str(tmp_path / "state"), spool_threshold_bytes=64
        ) as harness:
            client = harness.client("bob")
            client.create_session(
                payload, name="emp", session="mem", storage="memory"
            )
            client.create_session(
                payload, name="emp", session="spilled", storage="spill"
            )
            assert client.ddl("mem") == client.ddl("spilled")
            # The spilled session's pages live under its own directory.
            spill_dir = tmp_path / "state" / "bob" / "spilled" / "spill"
            assert spill_dir.exists()
            assert list(spill_dir.glob("store-*"))

    def test_failed_upload_leaves_no_session_directory(self, tmp_path):
        from repro.server import ServerError

        from .test_server import ServerThread

        bad = b"a,a\n1,2\n" + b"x" * 128  # duplicate header -> 400
        with ServerThread(
            resume_dir=str(tmp_path / "state"), spool_threshold_bytes=64
        ) as harness:
            client = harness.client("carol")
            with pytest.raises(ServerError):
                client.create_session(bad, name="emp", session="broken")
            assert not (tmp_path / "state" / "carol" / "broken").exists()
