"""End-to-end tests for the Normalize pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import optimized_closure
from repro.core.key_derivation import derive_keys
from repro.core.normalize import Normalizer, normalize
from repro.core.selection import ScriptedDecider
from repro.core.violations import find_violating_fds
from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.model.instance import RelationInstance


def assert_target_conform(instance: RelationInstance, target: str = "bcnf"):
    """Re-discover FDs and assert no (decomposable) violations remain."""
    extended = optimized_closure(BruteForceFD().discover(instance))
    keys = derive_keys(extended, instance.full_mask())
    null_mask = 0
    for index in range(instance.arity):
        if any(v is None for v in instance.columns_data[index]):
            null_mask |= 1 << index
    violating = find_violating_fds(
        extended,
        keys,
        null_mask=null_mask,
        primary_key=instance.relation.primary_key_mask,
        foreign_keys=instance.relation.foreign_key_masks(),
        target=target,
    )
    assert violating == [], [
        v.to_str(instance.columns) for v in violating
    ]


class TestPaperExample:
    def test_address_normalization(self, address):
        result = normalize(address, algorithm="bruteforce")
        schemas = {
            frozenset(instance.columns)
            for instance in result.instances.values()
        }
        assert frozenset({"First", "Last", "Postcode"}) in schemas
        assert frozenset({"Postcode", "City", "Mayor"}) in schemas

    def test_address_value_reduction(self, address):
        result = normalize(address, algorithm="bruteforce")
        assert result.original_values == 30
        assert result.total_values == 27

    def test_address_keys(self, address):
        result = normalize(address, algorithm="bruteforce")
        keys = {
            frozenset(instance.relation.primary_key or ())
            for instance in result.instances.values()
        }
        assert frozenset({"First", "Last"}) in keys
        assert frozenset({"Postcode"}) in keys

    def test_address_foreign_key(self, address):
        result = normalize(address, algorithm="bruteforce")
        fks = [
            (fk.columns, fk.ref_relation)
            for instance in result.instances.values()
            for fk in instance.relation.foreign_keys
        ]
        assert len(fks) == 1
        assert fks[0][0] == ("Postcode",)

    def test_result_is_bcnf(self, address):
        result = normalize(address, algorithm="bruteforce")
        for instance in result.instances.values():
            assert_target_conform(instance)

    def test_decomposition_log(self, address):
        result = normalize(address, algorithm="bruteforce")
        assert len(result.steps) == 1
        step = result.steps[0]
        assert step.lhs == ("Postcode",)
        assert set(step.rhs) == {"City", "Mayor"}
        assert step.chosen_rank == 0

    def test_reconstruct_is_lossless(self, address):
        result = normalize(address, algorithm="bruteforce")
        rebuilt = result.reconstruct("address")
        assert rebuilt.columns == address.columns
        assert sorted(rebuilt.iter_rows()) == sorted(address.iter_rows())

    def test_university_gets_full_key_via_ducc(self, university):
        result = normalize(university, algorithm="bruteforce")
        # the original relation keeps its name; its key must be the
        # non-FD-derivable {name, label}
        root = result.instances["university"]
        assert frozenset(root.relation.primary_key or ()) == {"name", "label"}


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=16),
        st.sampled_from([2, 3]),
        st.sampled_from([0.0, 0.0, 0.25]),
    )
    @settings(max_examples=20)
    def test_always_terminates_in_bcnf(self, seed, cols, rows, domain, nulls):
        instance = random_instance(seed, cols, rows, domain, nulls)
        result = normalize(instance, algorithm="bruteforce")
        for out in result.instances.values():
            assert_target_conform(out)

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=20)
    def test_always_lossless(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        result = normalize(instance, algorithm="bruteforce")
        rebuilt = result.reconstruct("random")
        assert sorted(rebuilt.iter_rows()) == sorted(instance.iter_rows())

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=15)
    def test_3nf_mode_terminates_and_preserves_data(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        result = normalize(instance, algorithm="bruteforce", target="3nf")
        rebuilt = result.reconstruct("random")
        assert sorted(rebuilt.iter_rows()) == sorted(instance.iter_rows())

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=10)
    def test_deterministic(self, seed):
        instance = random_instance(seed, 4, 12, domain_size=2)
        first = normalize(instance, algorithm="bruteforce")
        second = normalize(instance, algorithm="bruteforce")
        assert {n: i.columns for n, i in first.instances.items()} == {
            n: i.columns for n, i in second.instances.items()
        }


class TestDeciderIntegration:
    def test_stop_decision_keeps_relation(self, address):
        decider = ScriptedDecider(fd_choices=[None])
        result = normalize(address, algorithm="bruteforce", decider=decider)
        assert len(result.instances) == 1
        assert result.stopped_relations == ["address"]

    def test_scripted_alternative_choice(self, address):
        # picking a lower-ranked violating FD still yields a valid result
        decider = ScriptedDecider(fd_choices=[1])
        result = normalize(address, algorithm="bruteforce", decider=decider)
        rebuilt = result.reconstruct("address")
        assert sorted(rebuilt.iter_rows()) == sorted(address.iter_rows())

    def test_no_primary_key_choice(self, address):
        decider = ScriptedDecider(key_choices=[None, None, None])
        result = normalize(address, algorithm="bruteforce", decider=decider)
        root = result.instances["address"]
        assert root.relation.primary_key is None


class TestInputs:
    def test_multiple_relations(self, address, university):
        result = normalize([address, university], algorithm="bruteforce")
        assert len(result.stats) == 2
        for out in result.instances.values():
            assert_target_conform(out)

    def test_duplicate_names_rejected(self, address):
        with pytest.raises(ValueError, match="unique"):
            normalize([address, address], algorithm="bruteforce")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no input"):
            normalize([], algorithm="bruteforce")

    def test_input_relation_not_mutated(self, address):
        normalize(address, algorithm="bruteforce")
        assert address.relation.primary_key is None
        assert address.relation.foreign_keys == []

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown FD algorithm"):
            Normalizer(algorithm="alchemy")


class TestStatsAndTimings:
    def test_stats_populated(self, address):
        result = normalize(address, algorithm="bruteforce")
        stat = result.stats[0]
        assert stat.relation == "address"
        assert stat.num_attributes == 5
        assert stat.num_records == 6
        assert stat.num_fds == 12
        assert stat.num_fd_keys >= 1
        assert stat.avg_rhs_after_closure >= stat.avg_rhs_before_closure

    def test_timings_cover_components(self, address):
        result = normalize(address, algorithm="bruteforce")
        for component in (
            "fd_discovery",
            "closure",
            "key_derivation",
            "violation_detection",
            "selection",
            "decomposition",
            "primary_key_selection",
        ):
            assert component in result.timings
            assert result.timings[component] >= 0.0

    def test_to_str_summary(self, address):
        result = normalize(address, algorithm="bruteforce")
        text = result.to_str()
        assert "Decomposition log" in text
        assert "values: 30 -> 27" in text
