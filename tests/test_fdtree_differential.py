"""Lattice differential suite: FD-tree engines vs. a naive set oracle.

The level-indexed lattice engine (``fdtree.FDTree``), the recursive
baseline (``fdtree_legacy.LegacyFDTree``), and — under the numpy kernel
backend — the uint64-mirror sweep paths must all implement the same
abstract store: a set of ``lhs mask → rhs mask`` FDs with subset
queries over it.  :class:`NaiveFDTree` is that store written as the
most obvious dict possible, and every behaviour here is pinned against
it:

* property-based add/remove/specialize/prune/query sequences
  (hypothesis) on widths from 1 to 70 attributes (the multi-word
  uint64 packing path), plus degenerate shapes — empty trees, the
  empty LHS, constant full-mask RHSs;
* positive-cover construction from real agree sets (planted and
  random instances, both NULL semantics) asserting the final covers
  are byte-identical across engines and backends;
* a wider seeded campaign behind ``-m fuzz`` (nightly CI), widened via
  ``LATTICE_FUZZ_SEEDS`` exactly like ``KERNEL_FUZZ_SEEDS``.

Ordering contract: ``iter_all`` / ``iter_level`` are byte-identical
across engines (ascending attribute-path order).  ``collect_violated``
returns the same *multiset* under every engine but in engine-specific
order; consumers are order-insensitive (see
:func:`repro.discovery.hyfd.induction.apply_agree_set` — within one
agree set, specializations from different violated FDs can only
collide as exact equals, because extension attributes lie outside the
agree set while every violated LHS lies inside it).  Within the level
engine the python and numpy backends agree on the exact order.
"""

import os
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.model.attributes import bits_of, full_mask, iter_bits
from repro.structures import fdtree
from repro.structures.fdtree import FDTree
from repro.structures.fdtree_legacy import LegacyFDTree

NUMPY = kernels.numpy_available()
requires_numpy = pytest.mark.skipif(not NUMPY, reason="numpy not installed")

#: (engine, kernel backend) grid; legacy ignores the backend entirely,
#: so legacy+numpy would duplicate legacy+python.
CONFIGS = [("level", "python"), ("legacy", "python"), ("level", "numpy")]


def available_configs():
    return [c for c in CONFIGS if c[1] != "numpy" or NUMPY]


def config_params():
    return [
        pytest.param(
            (engine, backend),
            id=f"{engine}-{backend}",
            marks=[requires_numpy] if backend == "numpy" else [],
        )
        for engine, backend in CONFIGS
    ]


@pytest.fixture(autouse=True, scope="module")
def _force_vectorized_levels():
    """Sweep even tiny levels with the numpy kernels.

    The per-tree ``SMALL_LEVEL_THRESHOLD`` dispatch would otherwise
    delegate every small fixture to the interpreted loop and the
    numpy-path comparisons would be vacuous.
    """
    original = fdtree.SMALL_LEVEL_THRESHOLD
    fdtree.SMALL_LEVEL_THRESHOLD = 0
    yield
    fdtree.SMALL_LEVEL_THRESHOLD = original
    fdtree.set_engine(None)
    kernels.set_backend(None)


def build(config, width):
    engine, backend = config
    fdtree.set_engine(engine)
    kernels.set_backend(backend)
    tree = FDTree(width)
    assert tree.engine == engine
    return tree


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
class NaiveFDTree:
    """Executable specification: a dict of ``lhs mask → rhs mask``."""

    def __init__(self, num_attributes):
        self.num_attributes = num_attributes
        self.fds = {}

    def add(self, lhs, rhs):
        if rhs:
            self.fds[lhs] = self.fds.get(lhs, 0) | rhs

    def remove(self, lhs, rhs):
        remaining = self.fds.get(lhs, 0) & ~rhs
        if remaining:
            self.fds[lhs] = remaining
        else:
            self.fds.pop(lhs, None)

    def prune(self):
        pass  # nothing cached, nothing stale

    def contains_fd(self, lhs, rhs_attr):
        return bool(self.fds.get(lhs, 0) >> rhs_attr & 1)

    def contains_fd_or_generalization(self, lhs, rhs_attr):
        return any(
            stored & ~lhs == 0 and rhs >> rhs_attr & 1
            for stored, rhs in self.fds.items()
        )

    def add_minimal_specializations(self, lhs, rhs_attr, extensions):
        added = []
        for extension in iter_bits(extensions):
            new_lhs = lhs | (1 << extension)
            if not self.contains_fd_or_generalization(new_lhs, rhs_attr):
                self.add(new_lhs, 1 << rhs_attr)
                added.append(new_lhs)
        return added

    def collect_violated(self, agree_set):
        disagree = full_mask(self.num_attributes) & ~agree_set
        return [
            (lhs, rhs & disagree)
            for lhs, rhs in self.fds.items()
            if lhs & ~agree_set == 0 and rhs & disagree
        ]

    def any_violated(self, agree_set):
        return bool(self.collect_violated(agree_set))

    def iter_all(self):
        return sorted(self.fds.items(), key=lambda item: bits_of(item[0]))

    def iter_level(self, depth):
        return [
            item for item in self.iter_all() if item[0].bit_count() == depth
        ]

    def count_fds(self):
        return sum(rhs.bit_count() for rhs in self.fds.values())


# ----------------------------------------------------------------------
# Scenario machinery
# ----------------------------------------------------------------------
def apply_ops(tree, ops):
    """Run an op sequence; return the specialization-insert log."""
    log = []
    for op in ops:
        kind = op[0]
        if kind == "add":
            tree.add(op[1], op[2])
        elif kind == "remove":
            tree.remove(op[1], op[2])
        elif kind == "spec":
            log.append(tree.add_minimal_specializations(op[1], op[2], op[3]))
        elif kind == "prune":
            tree.prune()
    return log


def surface(tree, width, probes):
    """Canonical full-surface snapshot (order-sensitive where pinned)."""
    snapshot = {
        "all": list(tree.iter_all()),
        "levels": [list(tree.iter_level(k)) for k in range(width + 2)],
        "count": tree.count_fds(),
        "member": [
            (tree.contains_fd(mask, attr),
             tree.contains_fd_or_generalization(mask, attr))
            for mask in probes
            for attr in range(width)
        ],
        "violated": [sorted(tree.collect_violated(mask)) for mask in probes],
        "any": [tree.any_violated(mask) for mask in probes],
    }
    if not isinstance(tree, NaiveFDTree):
        # Batch entry points must agree with their scalar loops.
        pairs = [(mask, attr) for mask in probes for attr in range(width)]
        assert tree.contains_generalization_batch(pairs) == [
            tree.contains_fd_or_generalization(lhs, attr)
            for lhs, attr in pairs
        ]
        assert tree.collect_violated_batch(probes) == [
            tree.collect_violated(mask) for mask in probes
        ]
        assert tree.any_violated_batch(probes) == snapshot["any"]
    return snapshot


WIDTHS = (1, 2, 3, 4, 6, 8, 20, 70)


@st.composite
def lattice_scenarios(draw):
    width = draw(st.sampled_from(WIDTHS))
    full = full_mask(width)
    masks = st.integers(min_value=0, max_value=full)
    ops = []
    for _ in range(draw(st.integers(0, 25))):
        kind = draw(
            st.sampled_from(("add", "add", "add", "spec", "remove", "prune"))
        )
        if kind == "add":
            ops.append(("add", draw(masks), draw(masks)))
        elif kind == "remove":
            ops.append(("remove", draw(masks), draw(masks)))
        elif kind == "spec":
            lhs = draw(masks)
            rhs_attr = draw(st.integers(0, width - 1))
            # Extensions always lie outside lhs ∪ {rhs_attr}: the only
            # shape induction produces, and the one the equal-popcount
            # batch argument needs.
            extensions = draw(masks) & ~(lhs | (1 << rhs_attr))
            ops.append(("spec", lhs, rhs_attr, extensions))
        else:
            ops.append(("prune",))
    probes = draw(st.lists(masks, min_size=1, max_size=6))
    probes += [0, full]
    return width, ops, probes


def random_scenario(rng, width, num_ops):
    full = full_mask(width)
    ops = []
    for _ in range(num_ops):
        roll = rng.random()
        if roll < 0.5:
            ops.append(("add", rng.randint(0, full), rng.randint(0, full)))
        elif roll < 0.7:
            ops.append(("remove", rng.randint(0, full), rng.randint(0, full)))
        elif roll < 0.95:
            lhs = rng.randint(0, full)
            rhs_attr = rng.randrange(width)
            extensions = rng.randint(0, full) & ~(lhs | (1 << rhs_attr))
            ops.append(("spec", lhs, rhs_attr, extensions))
        else:
            ops.append(("prune",))
    probes = [rng.randint(0, full) for _ in range(8)] + [0, full]
    return ops, probes


def assert_engines_match_naive(width, ops, probes):
    naive = NaiveFDTree(width)
    expected_log = apply_ops(naive, ops)
    expected = surface(naive, width, probes)
    for config in available_configs():
        tree = build(config, width)
        log = apply_ops(tree, ops)
        assert log == expected_log, config
        assert surface(tree, width, probes) == expected, config


# ----------------------------------------------------------------------
# Property-based equivalence
# ----------------------------------------------------------------------
class TestPropertyDifferential:
    @settings(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(lattice_scenarios())
    def test_all_engines_match_naive_oracle(self, scenario):
        width, ops, probes = scenario
        assert_engines_match_naive(width, ops, probes)

    @requires_numpy
    @settings(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(lattice_scenarios())
    def test_backends_agree_on_exact_violation_order(self, scenario):
        """python vs. numpy within the level engine: *order* identical
        (both sweep levels ascending in storage order), not just sets."""
        width, ops, probes = scenario
        first = build(("level", "python"), width)
        apply_ops(first, ops)
        second = build(("level", "numpy"), width)
        apply_ops(second, ops)
        assert first.collect_violated_batch(probes) == (
            second.collect_violated_batch(probes)
        )


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------
class TestDegenerateShapes:
    @pytest.mark.parametrize("config", config_params())
    def test_empty_tree(self, config):
        tree = build(config, 5)
        assert list(tree.iter_all()) == []
        assert tree.count_fds() == 0
        assert not tree.contains_fd_or_generalization(0b10101, 1)
        assert tree.collect_violated(0b00001) == []
        assert not tree.any_violated(0b00001)
        tree.prune()
        assert tree.count_fds() == 0

    @pytest.mark.parametrize("config", config_params())
    def test_single_attribute_universe(self, config):
        tree = build(config, 1)
        tree.add(0, 0b1)
        assert tree.contains_fd_or_generalization(0b1, 0)
        assert sorted(tree.collect_violated(0)) == [(0, 0b1)]
        assert tree.collect_violated(0b1) == []

    @pytest.mark.parametrize("config", config_params())
    def test_full_agreement_never_violates(self, config):
        tree = build(config, 4)
        tree.add(0b0011, 0b1100)
        assert tree.collect_violated(full_mask(4)) == []
        assert not tree.any_violated(full_mask(4))

    @pytest.mark.parametrize("config", config_params())
    def test_wide_lattice_multiword_masks(self, config):
        width = 70  # two uint64 words
        tree = build(config, width)
        high, low = 1 << 69, 1
        tree.add(low, high)
        tree.add(high, low)
        assert tree.contains_fd_or_generalization(low | (1 << 35), 69)
        assert tree.contains_fd_or_generalization(high | (1 << 35), 0)
        assert not tree.contains_fd_or_generalization(1 << 35, 69)
        agree = full_mask(width) & ~high
        assert sorted(tree.collect_violated(agree)) == [(low, high)]


# ----------------------------------------------------------------------
# Positive covers from real agree sets (the acceptance campaign)
# ----------------------------------------------------------------------
def naive_positive_cover(arity, agree_sets):
    """``build_positive_cover`` transliterated onto the oracle."""
    naive = NaiveFDTree(arity)
    naive.add(0, full_mask(arity))
    ordered = sorted(set(agree_sets), key=lambda mask: -mask.bit_count())
    for agree in ordered:
        for lhs, rhs_mask in sorted(naive.collect_violated(agree)):
            naive.remove(lhs, rhs_mask)
            for rhs_attr in iter_bits(rhs_mask):
                candidates = full_mask(arity) & ~(
                    agree | (1 << rhs_attr) | lhs
                )
                naive.add_minimal_specializations(lhs, rhs_attr, candidates)
    return naive


def all_pairs_agree_sets(instance, null_equals_null):
    encoding = instance.encoded(null_equals_null)
    n = encoding.num_rows
    lefts = [i for i in range(n) for _ in range(i + 1, n)]
    rights = [j for i in range(n) for j in range(i + 1, n)]
    return encoding.agree_sets_batch(lefts, rights)


def seeded_instance(seed):
    from repro.datagen.random_tables import random_instance
    from repro.verification.planted import plant_instance

    if seed % 3 == 2:
        return plant_instance(
            seed, num_columns=4 + seed % 3, num_rows=30, null_rate=0.2
        ).instance
    return random_instance(
        seed,
        3 + seed % 4,
        10 + (seed * 7) % 30,
        domain_size=1 + seed % 4,
        null_rate=(seed % 3) * 0.25,
    )


def assert_covers_identical(instance, null_equals_null):
    from repro.discovery.hyfd.induction import build_positive_cover

    agree_sets = all_pairs_agree_sets(instance, null_equals_null)
    expected = naive_positive_cover(instance.arity, agree_sets).iter_all()
    for config in available_configs():
        engine, backend = config
        fdtree.set_engine(engine)
        kernels.set_backend(backend)
        tree = build_positive_cover(instance.arity, agree_sets)
        assert tree.engine == engine
        assert list(tree.iter_all()) == expected, config


class TestPositiveCoverCampaign:
    """≥25 seeded planted/random instances, both NULL semantics: the
    induction-built positive cover is byte-identical (``iter_all``)
    across the naive oracle, the legacy engine, and both level-engine
    backends."""

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("null_equals_null", [True, False])
    def test_covers_identical(self, seed, null_equals_null):
        assert_covers_identical(seeded_instance(seed), null_equals_null)


# ----------------------------------------------------------------------
# remove/prune hygiene (the stale rhs_subtree / tombstone fix)
# ----------------------------------------------------------------------
def removal_churn(tree, width):
    """Insert a dense level-2 layer, then remove most of it."""
    kept = []
    for a in range(width):
        for b in range(a + 1, width):
            lhs = (1 << a) | (1 << b)
            tree.add(lhs, 0b1 if (a + b) % 5 else 0b10)
            if (a + b) % 5 == 0:
                kept.append(lhs)
            else:
                tree.remove(lhs, 0b1)
    return kept


class TestPruneShrinksTraversal:
    def test_level_engine_tombstones_compacted(self):
        tree = build(("level", "python"), 12)
        removal_churn(tree, 12)
        before = tree.stats()
        assert before["dead"] > 0
        survivors = list(tree.iter_all())

        mark = kernels.counters_snapshot()
        tree.contains_fd_or_generalization(full_mask(12), 0)
        rows_before = kernels.counters_delta(mark).get(
            "kernel_lattice_generalization_rows", 0
        )

        tree.prune()
        after = tree.stats()
        assert after["dead"] == 0
        assert after["entries"] == len(survivors)
        assert after["entries"] < before["entries"]
        assert list(tree.iter_all()) == survivors  # prune is content-free

        mark = kernels.counters_snapshot()
        tree.contains_fd_or_generalization(full_mask(12), 0)
        rows_after = kernels.counters_delta(mark).get(
            "kernel_lattice_generalization_rows", 0
        )
        assert rows_after < rows_before

    def test_level_engine_auto_compacts_heavy_churn(self):
        tree = build(("level", "python"), 12)
        for a in range(12):
            for b in range(a + 1, 12):
                tree.add((1 << a) | (1 << b), 0b1)
        survivors = []
        for a in range(12):
            for b in range(a + 1, 12):
                if (a * 13 + b) % 7:
                    tree.remove((1 << a) | (1 << b), 0b1)
                else:
                    survivors.append((1 << a) | (1 << b))
        # >half of the 66 entries tombstoned → the level self-compacted
        # mid-churn (a sub-threshold tombstone tail may remain).
        stats = tree.stats()
        assert stats["entries"] < 66
        assert stats["dead"] <= fdtree.COMPACT_MIN_DEAD
        assert [lhs for lhs, _ in tree.iter_all()] == sorted(
            survivors, key=bits_of
        )

    def test_legacy_engine_prune_drops_dead_nodes(self):
        tree = build(("legacy", "python"), 12)
        removal_churn(tree, 12)
        before = tree.stats()
        assert before["dead"] > 0
        survivors = list(tree.iter_all())
        tree.prune()
        after = tree.stats()
        assert after["nodes"] < before["nodes"]
        assert after["dead"] < before["dead"]
        assert list(tree.iter_all()) == survivors

    def test_legacy_prune_tightens_rhs_subtree(self):
        tree = build(("legacy", "python"), 4)
        tree.add(0b0011, 0b0100)
        tree.remove(0b0011, 0b0100)
        # Stale over-approximation: the root still advertises RHS 2.
        assert tree._root.rhs_subtree >> 2 & 1
        tree.prune()
        assert tree._root.rhs_subtree == 0
        assert tree._root.children == {}

    @pytest.mark.parametrize("config", config_params())
    def test_depth_recomputed_by_prune(self, config):
        tree = build(config, 6)
        tree.add(0b111000, 0b1)
        tree.add(0b000001, 0b10)
        assert tree.depth() == 3
        tree.remove(0b111000, 0b1)
        tree.prune()
        assert tree.depth() == 1

    @pytest.mark.parametrize("config", config_params())
    def test_remove_then_readd_revives(self, config):
        tree = build(config, 5)
        tree.add(0b00110, 0b00001)
        tree.remove(0b00110, 0b00001)
        tree.add(0b00110, 0b01000)
        assert dict(tree.iter_all()) == {0b00110: 0b01000}
        assert tree.count_fds() == 1


# ----------------------------------------------------------------------
# Engine selection & process plumbing
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_FDTREE", raising=False)
        fdtree.set_engine(None)
        assert fdtree.engine_name() == "auto"
        # auto dispatches on width: trie for narrow, levels for wide.
        assert isinstance(FDTree(4), LegacyFDTree)
        assert type(FDTree(fdtree.AUTO_LEGACY_MAX_ATTRIBUTES + 1)) is FDTree

    def test_set_engine_selects_legacy(self):
        fdtree.set_engine("legacy")
        tree = FDTree(4)
        assert isinstance(tree, LegacyFDTree)
        assert tree.engine == "legacy"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FDTREE", "legacy")
        fdtree.set_engine(None)
        assert fdtree.engine_name() == "legacy"
        assert isinstance(FDTree(4), LegacyFDTree)

    def test_set_engine_rejects_unknown(self):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError):
            fdtree.set_engine("btree")

    def test_env_rejects_unknown(self, monkeypatch):
        from repro.runtime.errors import InputError

        monkeypatch.setenv("REPRO_FDTREE", "btree")
        fdtree.set_engine(None)
        with pytest.raises(InputError):
            fdtree.engine_name()

    def test_ensure_engine_switches(self):
        fdtree.set_engine("level")
        fdtree.ensure_engine("legacy")
        assert fdtree.engine_name() == "legacy"
        fdtree.ensure_engine("level")
        assert fdtree.engine_name() == "level"

    @pytest.mark.parametrize("config", config_params())
    def test_pickle_roundtrip_preserves_engine_and_content(self, config):
        tree = build(config, 70)
        tree.add(0b1, 0b10)
        tree.add((1 << 69) | 0b1, 1 << 68)
        tree.remove(0b1, 0b10)
        # Unpickle under the *other* engine selection: saved trees keep
        # their class; only fresh constructions consult the registry.
        fdtree.set_engine("legacy" if config[0] == "level" else "level")
        clone = pickle.loads(pickle.dumps(tree))
        assert type(clone) is type(tree)
        assert list(clone.iter_all()) == list(tree.iter_all())
        assert clone.count_fds() == tree.count_fds()
        clone.add(0b111, 0b1)  # still mutable after the trip
        assert clone.contains_fd(0b111, 0)

    @requires_numpy
    def test_pickle_rebuilds_mirrors_under_receiving_backend(self):
        tree = build(("level", "numpy"), 8)
        for a in range(8):
            tree.add(1 << a, 0b1 if a else 0b10)
        kernels.set_backend("python")
        clone = pickle.loads(pickle.dumps(tree))
        assert clone._np is None  # interpreted representation now
        assert list(clone.iter_all()) == list(tree.iter_all())
        kernels.set_backend("numpy")
        clone = pickle.loads(pickle.dumps(tree))
        assert clone._np is not None
        assert list(clone.iter_all()) == list(tree.iter_all())

    def test_profile_records_engine(self):
        from repro.datagen.random_tables import random_instance
        from repro.profiling import profile

        fdtree.set_engine("level")
        kernels.set_backend("python")
        report = profile(random_instance(41, 3, 20, domain_size=2))
        assert report.counters["fdtree_engine"] == "level"
        assert report.counters["kernel_lattice_generalization_calls"] > 0
        assert report.counters["kernel_lattice_levels_calls"] > 0

    def test_verify_cli_accepts_fdtree_flag(self):
        from repro.verification.runner import main_verify

        rc = main_verify(
            ["--seeds", "1", "--rows", "10", "--quiet", "--fdtree", "legacy"]
        )
        assert rc == 0
        assert fdtree.engine_name() == "legacy"

    def test_pool_workers_pin_engine(self):
        """A 2-worker discovery under the legacy engine matches serial.

        Dispatch ships the resolved engine name with every task tuple
        and ``_worker_main`` re-pins it, so spawned workers can never
        resolve ``REPRO_FDTREE`` differently from the parent.
        """
        from repro.datagen.random_tables import random_instance
        from repro.discovery.hyfd.hyfd import HyFD

        instance = random_instance(57, 5, 200, domain_size=2)
        fdtree.set_engine("legacy")
        kernels.set_backend("python")
        serial = sorted(
            (fd.lhs, fd.rhs) for fd in HyFD().discover(instance)
        )
        instance.invalidate_caches()
        parallel = sorted(
            (fd.lhs, fd.rhs) for fd in HyFD(workers=2).discover(instance)
        )
        assert parallel == serial


# ----------------------------------------------------------------------
# Adaptive engine: REPRO_FDTREE=auto picks per relation width
# ----------------------------------------------------------------------
class TestAutoEngine:
    """``auto`` = trie at ≤ AUTO_LEGACY_MAX_ATTRIBUTES attrs, levels above."""

    @pytest.fixture(autouse=True)
    def _reset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FDTREE", raising=False)
        yield
        fdtree.set_engine(None)

    def test_default_is_auto(self):
        fdtree.set_engine(None)
        assert fdtree.engine_name() == "auto"

    def test_auto_dispatches_on_width(self):
        fdtree.set_engine("auto")
        assert fdtree.engine_name() == "auto"
        threshold = fdtree.AUTO_LEGACY_MAX_ATTRIBUTES
        assert isinstance(FDTree(threshold), LegacyFDTree)
        assert isinstance(FDTree(1), LegacyFDTree)
        wide = FDTree(threshold + 1)
        assert type(wide) is FDTree
        assert wide.engine == "level"

    def test_resolve_engine_is_pure_in_width(self):
        fdtree.set_engine("auto")
        threshold = fdtree.AUTO_LEGACY_MAX_ATTRIBUTES
        assert fdtree.resolve_engine(threshold) == "legacy"
        assert fdtree.resolve_engine(threshold + 1) == "level"
        fdtree.set_engine("legacy")
        assert fdtree.resolve_engine(threshold + 1) == "legacy"
        fdtree.set_engine("level")
        assert fdtree.resolve_engine(1) == "level"

    def test_env_selects_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_FDTREE", "auto")
        fdtree.set_engine(None)
        assert fdtree.engine_name() == "auto"
        assert isinstance(FDTree(4), LegacyFDTree)

    def test_ensure_engine_pins_auto_policy(self):
        """Workers re-pin the *policy*; resolution happens per tree."""
        fdtree.set_engine("level")
        fdtree.ensure_engine("auto")
        assert fdtree.engine_name() == "auto"
        assert isinstance(FDTree(3), LegacyFDTree)
        assert type(FDTree(40)) is FDTree

    @pytest.mark.parametrize("width", [5, 13])
    def test_auto_cover_identical_to_level(self, width):
        from repro.datagen.random_tables import random_instance
        from repro.discovery.hyfd.hyfd import HyFD

        instance = random_instance(23, width, 120, domain_size=2)
        fdtree.set_engine("level")
        reference = sorted(
            (fd.lhs, fd.rhs) for fd in HyFD().discover(instance)
        )
        instance.invalidate_caches()
        fdtree.set_engine("auto")
        adaptive = sorted(
            (fd.lhs, fd.rhs) for fd in HyFD().discover(instance)
        )
        assert adaptive == reference

    def test_verify_cli_accepts_auto(self):
        from repro.verification.runner import main_verify

        rc = main_verify(
            ["--seeds", "1", "--rows", "10", "--quiet", "--fdtree", "auto"]
        )
        assert rc == 0
        assert fdtree.engine_name() == "auto"


# ----------------------------------------------------------------------
# Kernel sweep oracles: pybackend vs numpy vs the tree's inlined loops
# ----------------------------------------------------------------------
class TestLatticeKernelOracles:
    """``pybackend.lattice_*`` are the normative per-level sweeps; the
    tree inlines them for speed and the numpy mirrors vectorize them.
    Pin all three against each other directly."""

    widths = st.integers(min_value=1, max_value=70)

    @staticmethod
    def _rows(rng, width, count):
        full = (1 << width) - 1
        return (
            [rng.randrange(full + 1) for _ in range(count)],
            [rng.randrange(full + 1) for _ in range(count)],
        )

    @given(st.integers(min_value=0, max_value=10_000), widths)
    @settings(deadline=None)
    def test_pybackend_matches_tree_sweeps(self, seed, width):
        from repro.kernels import pybackend as _py

        rng = random.Random(seed)
        lhs_rows, rhs_rows = self._rows(rng, width, rng.randrange(1, 12))
        full = (1 << width) - 1
        tree = FDTree.__new__(FDTree)
        FDTree.__init__(tree, width)
        for lhs, rhs in zip(lhs_rows, rhs_rows):
            tree.add(lhs, rhs)
        for _ in range(6):
            query = rng.randrange(full + 1)
            rhs_attr = rng.randrange(width)
            expect = _py.lattice_find_generalization(
                lhs_rows, rhs_rows, query, 1 << rhs_attr
            )
            assert tree.contains_fd_or_generalization(
                query, rhs_attr
            ) == expect
            agree = rng.randrange(full + 1)
            disagree = full & ~agree
            hits = _py.lattice_violations(
                lhs_rows, rhs_rows, agree, disagree
            )
            assert _py.lattice_any_violation(
                lhs_rows, rhs_rows, agree, disagree
            ) == bool(hits)

    @requires_numpy
    @given(st.integers(min_value=0, max_value=10_000), widths)
    @settings(deadline=None)
    def test_pybackend_matches_npbackend(self, seed, width):
        from repro.kernels import npbackend as _npk
        from repro.kernels import pybackend as _py

        np = kernels.numpy_module()
        rng = random.Random(seed)
        words = max(1, (width + 63) // 64)
        lhs_rows, rhs_rows = self._rows(rng, width, rng.randrange(1, 12))
        full = (1 << width) - 1
        np_lhs = _npk.pack_masks(lhs_rows, words)
        np_rhs = _npk.pack_masks(rhs_rows, words)
        for _ in range(6):
            query = rng.randrange(full + 1)
            rhs_attr = rng.randrange(width)
            inv_query = np.invert(_npk.pack_masks([query], words)[0])
            assert _npk.lattice_find_generalization(
                np_lhs, np_rhs, inv_query, rhs_attr
            ) == _py.lattice_find_generalization(
                lhs_rows, rhs_rows, query, 1 << rhs_attr
            )
            agree = rng.randrange(full + 1)
            disagree = full & ~agree
            inv_agree = np.invert(_npk.pack_masks([agree], words)[0])
            disagree_words = _npk.pack_masks([disagree], words)[0]
            assert list(
                _npk.lattice_violations(
                    np_lhs, np_rhs, inv_agree, disagree_words
                )
            ) == _py.lattice_violations(lhs_rows, rhs_rows, agree, disagree)
            assert _npk.lattice_any_violation(
                np_lhs, np_rhs, inv_agree, disagree_words
            ) == _py.lattice_any_violation(
                lhs_rows, rhs_rows, agree, disagree
            )
            allowed = rng.randrange(full + 1)
            assert _npk.lattice_specialization_screen(
                np_lhs, np_rhs, _npk.pack_masks([allowed], words)[0],
                rhs_attr,
            ) == _py.lattice_specialization_screen(
                lhs_rows, rhs_rows, allowed, 1 << rhs_attr
            )


# ----------------------------------------------------------------------
# Wider seeded campaign (nightly CI): -m fuzz
# ----------------------------------------------------------------------
@pytest.mark.fuzz
class TestLatticeFuzz:
    """Seeded op-sequence and cover campaigns; widen with
    ``LATTICE_FUZZ_SEEDS`` (the lattice analogue of
    ``KERNEL_FUZZ_SEEDS``)."""

    SEEDS = int(os.environ.get("LATTICE_FUZZ_SEEDS", 25))

    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_random_op_sequences_identical(self, seed):
        rng = random.Random(seed)
        width = WIDTHS[seed % len(WIDTHS)]
        ops, probes = random_scenario(rng, width, 40 + (seed * 11) % 60)
        assert_engines_match_naive(width, ops, probes)

    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_positive_covers_identical(self, seed):
        # Offset past the tier-1 campaign's seed range.
        instance = seeded_instance(100 + seed)
        assert_covers_identical(instance, null_equals_null=bool(seed % 2))
