"""End-to-end smoke of the daemon as a real subprocess.

Three contracts only a real process can prove:

* **CLI parity** — a full upload → batch → DDL/migration round trip
  through ``repro serve`` + ``repro submit`` produces files
  byte-identical to the offline ``repro apply-batch`` run on the same
  inputs (the same diff the CI ``server-smoke`` job performs);
* **clean drain** — SIGTERM exits 0 and leaves no ``repro-shm-*``
  segments behind;
* **crash durability** — ``kill -9`` mid-stream, restart with the same
  ``--resume-dir``, and the session revives to the identical cover via
  its journal: the stats counters must show ``journal_hits >= 1`` and
  ``discovery_runs == 0`` in the restarted daemon (no rediscovery).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

CSV_TEXT = "emp,dept,mgr\n1,sales,ann\n2,sales,ann\n3,eng,bob\n"
CHANGES = {
    "format": "repro/changelog",
    "version": 1,
    "batches": [
        {"inserts": [["4", "eng", "bob"], ["5", "ops", "cat"]], "deletes": [0]},
        {"inserts": [["6", "ops", "cat"]]},
    ],
}


def _shm_segments(pid: int) -> list[str]:
    shm = Path("/dev/shm")
    if not shm.exists():  # pragma: no cover - non-Linux
        return []
    return [p.name for p in shm.glob(f"repro-shm-{pid}-*")]


class Daemon:
    """Spawn ``repro serve`` and wait for its announce line."""

    def __init__(self, tmp_path: Path, *extra_args: str, tcp: bool = True):
        self.log = tmp_path / f"serve-{len(list(tmp_path.glob('serve-*')))}.log"
        self.handle = open(self.log, "w", encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
            stdout=self.handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        pattern = r"listening on http://[^:]+:(\d+)" if tcp else (
            r"listening on unix:"
        )
        match = self._await(pattern)
        self.port = int(match.group(1)) if tcp else 0

    def _await(self, pattern: str, timeout: float = 30.0) -> "re.Match":
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            text = self.log.read_text(encoding="utf-8")
            match = re.search(pattern, text)
            if match:
                return match
            if self.proc.poll() is not None:
                raise AssertionError(f"daemon died during startup:\n{text}")
            time.sleep(0.05)
        raise AssertionError(
            f"daemon never printed {pattern!r}:\n"
            f"{self.log.read_text(encoding='utf-8')}"
        )

    def submit(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "submit",
                "--port",
                str(self.port),
                *args,
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def terminate(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=30)
        self.handle.close()
        return code

    def kill9(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.handle.close()


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "data.csv").write_text(CSV_TEXT, encoding="utf-8")
    (tmp_path / "changes.json").write_text(
        json.dumps(CHANGES), encoding="utf-8"
    )
    return tmp_path


def _offline_reference(workdir: Path) -> tuple[str, str]:
    """The offline CLI's DDL + migration bytes for the same stream."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "apply-batch",
            str(workdir / "data.csv"),
            "--changes",
            str(workdir / "changes.json"),
            "--ddl",
            str(workdir / "offline.sql"),
            "--migration",
            str(workdir / "offline_mig.sql"),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return (
        (workdir / "offline.sql").read_text(encoding="utf-8"),
        (workdir / "offline_mig.sql").read_text(encoding="utf-8"),
    )


def test_served_bytes_match_offline_cli_and_sigterm_drains(workdir):
    daemon = Daemon(workdir, "--resume-dir", str(workdir / "state"))
    try:
        completed = daemon.submit(
            str(workdir / "data.csv"),
            "--session",
            "s1",
            "--changes",
            str(workdir / "changes.json"),
            "--ddl",
            str(workdir / "served.sql"),
            "--migration",
            str(workdir / "served_mig.sql"),
        )
        assert completed.returncode == 0, completed.stderr
        assert "session s1 created" in completed.stdout

        offline_ddl, offline_migration = _offline_reference(workdir)
        served_ddl = (workdir / "served.sql").read_text(encoding="utf-8")
        served_migration = (workdir / "served_mig.sql").read_text(
            encoding="utf-8"
        )
        assert served_ddl == offline_ddl
        assert served_migration == offline_migration
    finally:
        pid = daemon.proc.pid
        code = daemon.terminate()
    assert code == 0, daemon.log.read_text(encoding="utf-8")
    assert _shm_segments(pid) == []


def test_kill9_restart_revives_from_journal_without_rediscovery(workdir):
    state = str(workdir / "state")
    daemon = Daemon(workdir, "--resume-dir", state)
    try:
        completed = daemon.submit(
            str(workdir / "data.csv"),
            "--session",
            "s1",
            "--changes",
            str(workdir / "changes.json"),
            "--ddl",
            str(workdir / "before.sql"),
        )
        assert completed.returncode == 0, completed.stderr
    finally:
        daemon.kill9()  # no drain, no goodbye — the crash case

    restarted = Daemon(workdir, "--resume-dir", state)
    try:
        completed = restarted.submit(
            "--session", "s1", "--ddl", str(workdir / "after.sql"), "--stats"
        )
        assert completed.returncode == 0, completed.stderr
        stats = json.loads(
            completed.stdout[completed.stdout.index("{"):]
        )["sessions"]
        # The journal-hit counters are the proof of "no rediscovery".
        assert stats["journal_hits"] >= 1
        assert stats["discovery_runs"] == 0
        before = (workdir / "before.sql").read_text(encoding="utf-8")
        after = (workdir / "after.sql").read_text(encoding="utf-8")
        assert before == after
    finally:
        code = restarted.terminate()
    assert code == 0


def test_submit_maps_server_errors_to_cli_exit_codes(workdir):
    daemon = Daemon(workdir, "--resume-dir", str(workdir / "state"))
    try:
        completed = daemon.submit("--session", "ghost", "--ddl", "-")
        assert completed.returncode == 2  # 404 → input-error family
        assert "error" in completed.stderr
    finally:
        assert daemon.terminate() == 0


def test_unix_socket_transport(workdir):
    socket_path = str(workdir / "repro.sock")
    daemon = Daemon(
        workdir, "--socket", socket_path, "--resume-dir",
        str(workdir / "state"), tcp=False,
    )
    try:
        completed = daemon.submit(
            str(workdir / "data.csv"),
            "--unix-socket",
            socket_path,
            "--session",
            "s1",
            "--ddl",
            "-",
        )
        assert completed.returncode == 0, completed.stderr
        assert "CREATE TABLE" in completed.stdout
    finally:
        assert daemon.terminate() == 0
    assert not Path(socket_path).exists()
