"""Degenerate inputs: every discoverer and the Normalizer must agree.

The robustness contract for boundary-shaped data — zero rows, one row,
one column, constant columns, all-NULL columns — is that all FD
discoverers return the *same* minimal FDs (bruteforce is the oracle),
key discovery stays consistent, and ``Normalizer.run`` completes
without crashing.  Impossible configurations raise
:class:`~repro.runtime.errors.InputError`.
"""

import pytest

from repro.core.normalize import Normalizer
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.dfd import DFD
from repro.discovery.hyfd import HyFD
from repro.discovery.tane import Tane
from repro.discovery.ucc import DuccUCC, NaiveUCC
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import InputError
from tests.helpers import canon_fds

ALGORITHMS = [BruteForceFD, Tane, DFD, HyFD]


def instance_of(columns, rows, name="t"):
    return RelationInstance.from_rows(Relation(name, tuple(columns)), rows)


DEGENERATE_INSTANCES = {
    "empty": instance_of(("a", "b", "c"), []),
    "single_row": instance_of(("a", "b", "c"), [("1", "2", "3")]),
    "single_column": instance_of(("a",), [("1",), ("2",), ("1",)]),
    "constant_column": instance_of(
        ("a", "b"), [("x", "1"), ("x", "2"), ("x", "3")]
    ),
    "all_null_column": instance_of(
        ("a", "b"), [(None, "1"), (None, "2"), (None, "2")]
    ),
    "duplicate_rows": instance_of(
        ("a", "b"), [("1", "2"), ("1", "2"), ("1", "2")]
    ),
}


class TestDiscovererConsistency:
    @pytest.mark.parametrize("shape", sorted(DEGENERATE_INSTANCES))
    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_matches_bruteforce_oracle(self, shape, algorithm):
        instance = DEGENERATE_INSTANCES[shape]
        expected = canon_fds(BruteForceFD().discover(instance))
        assert canon_fds(algorithm().discover(instance)) == expected

    @pytest.mark.parametrize("shape", sorted(DEGENERATE_INSTANCES))
    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_null_inequality_semantics_agree(self, shape, algorithm):
        instance = DEGENERATE_INSTANCES[shape]
        expected = canon_fds(
            BruteForceFD(null_equals_null=False).discover(instance)
        )
        found = canon_fds(
            algorithm(null_equals_null=False).discover(instance)
        )
        assert found == expected

    def test_empty_relation_fds(self):
        # Zero rows: every FD holds vacuously, so the minimal cover is
        # exactly "∅ → everything".
        fds = HyFD().discover(DEGENERATE_INSTANCES["empty"])
        assert dict(fds.items()) == {0: 0b111}

    def test_single_row_fds(self):
        fds = HyFD().discover(DEGENERATE_INSTANCES["single_row"])
        assert dict(fds.items()) == {0: 0b111}

    def test_single_column_has_no_fds(self):
        fds = HyFD().discover(DEGENERATE_INSTANCES["single_column"])
        assert len(fds) == 0


class TestKeyDiscovererConsistency:
    @pytest.mark.parametrize("shape", sorted(DEGENERATE_INSTANCES))
    def test_ducc_matches_naive(self, shape):
        instance = DEGENERATE_INSTANCES[shape]
        ducc = sorted(DuccUCC().discover(instance))
        naive = sorted(NaiveUCC().discover(instance))
        assert ducc == naive

    def test_empty_relation_empty_key(self):
        # Zero rows: the empty attribute set is already unique.
        assert sorted(DuccUCC().discover(DEGENERATE_INSTANCES["empty"])) == [0]

    def test_duplicate_rows_have_no_key(self):
        uccs = DuccUCC().discover(DEGENERATE_INSTANCES["duplicate_rows"])
        assert list(uccs) == []


class TestNormalizerBoundaries:
    @pytest.mark.parametrize("shape", sorted(DEGENERATE_INSTANCES))
    def test_run_completes(self, shape):
        result = Normalizer(algorithm="hyfd").run(DEGENERATE_INSTANCES[shape])
        assert len(result.schema) >= 1

    def test_no_inputs_rejected(self):
        with pytest.raises(InputError):
            Normalizer().run([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InputError):
            Normalizer().run(
                [
                    instance_of(("a",), [("1",)], name="same"),
                    instance_of(("b",), [("2",)], name="same"),
                ]
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(InputError):
            Normalizer(algorithm="quantum")

    def test_input_error_is_a_value_error(self):
        # Pre-taxonomy callers caught ValueError; that must keep working.
        with pytest.raises(ValueError):
            Normalizer(algorithm="quantum")
