"""Tests for the decision layer (auto / scripted / callback deciders)."""

import pytest

from repro.core.scoring import KeyScore, ViolatingFDScore
from repro.core.selection import AutoDecider, CallbackDecider, ScriptedDecider
from repro.model.fd import FD
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


@pytest.fixture()
def instance():
    return RelationInstance.from_rows(
        Relation("t", ("a", "b", "c")), [(1, 2, 3)]
    )


def fd_ranking():
    return [
        ViolatingFDScore(FD(0b001, 0b010), 1.0, 1.0, 1.0, 1.0),
        ViolatingFDScore(FD(0b010, 0b100), 0.5, 0.5, 0.5, 0.5),
    ]


def key_ranking():
    return [KeyScore(0b001, 1.0, 1.0, 1.0), KeyScore(0b110, 0.5, 0.5, 0.5)]


class TestAutoDecider:
    def test_picks_top(self, instance):
        decider = AutoDecider()
        assert decider.choose_violating_fd(instance, fd_ranking()) == 0
        assert decider.choose_primary_key(instance, key_ranking()) == 0

    def test_empty_ranking_returns_none(self, instance):
        decider = AutoDecider()
        assert decider.choose_violating_fd(instance, []) is None
        assert decider.choose_primary_key(instance, []) is None

    def test_edit_rhs_keeps_everything(self, instance):
        decider = AutoDecider()
        chosen = fd_ranking()[0]
        assert decider.edit_rhs(instance, chosen, shared_rhs=0b010) == 0b010


class TestScriptedDecider:
    def test_replays_choices(self, instance):
        decider = ScriptedDecider(fd_choices=[1, None], key_choices=[1])
        assert decider.choose_violating_fd(instance, fd_ranking()) == 1
        assert decider.choose_violating_fd(instance, fd_ranking()) is None
        assert decider.choose_primary_key(instance, key_ranking()) == 1

    def test_falls_back_to_auto_when_exhausted(self, instance):
        decider = ScriptedDecider(fd_choices=[1])
        decider.choose_violating_fd(instance, fd_ranking())
        assert decider.choose_violating_fd(instance, fd_ranking()) == 0

    def test_out_of_range_choice_raises(self, instance):
        decider = ScriptedDecider(fd_choices=[7])
        with pytest.raises(IndexError):
            decider.choose_violating_fd(instance, fd_ranking())

    def test_out_of_range_key_choice_raises(self, instance):
        decider = ScriptedDecider(key_choices=[9])
        with pytest.raises(IndexError):
            decider.choose_primary_key(instance, key_ranking())

    def test_rhs_edit_by_name(self, instance):
        decider = ScriptedDecider(
            fd_choices=[0], rhs_edits={0: frozenset({"b"})}
        )
        chosen = fd_ranking()[0]  # rhs = {b}
        decider.choose_violating_fd(instance, fd_ranking())
        with pytest.raises(ValueError, match="every RHS attribute"):
            decider.edit_rhs(instance, chosen, shared_rhs=0)

    def test_rhs_edit_partial(self, instance):
        decider = ScriptedDecider(
            fd_choices=[0], rhs_edits={0: frozenset({"b"})}
        )
        chosen = ViolatingFDScore(FD(0b001, 0b110), 1, 1, 1, 1)
        decider.choose_violating_fd(instance, fd_ranking())
        assert decider.edit_rhs(instance, chosen, shared_rhs=0b010) == 0b100


class TestCallbackDecider:
    def test_callbacks_invoked(self, instance):
        calls = []

        def on_fd(inst, ranking):
            calls.append("fd")
            return 1

        def on_key(inst, ranking):
            calls.append("key")
            return None

        def on_edit(inst, chosen, shared):
            calls.append("edit")
            return chosen.fd.rhs

        decider = CallbackDecider(on_fd, on_key, on_edit)
        assert decider.choose_violating_fd(instance, fd_ranking()) == 1
        assert decider.choose_primary_key(instance, key_ranking()) is None
        assert decider.edit_rhs(instance, fd_ranking()[0], 0) == 0b010
        assert calls == ["fd", "key", "edit"]

    def test_missing_callbacks_act_automatic(self, instance):
        decider = CallbackDecider()
        assert decider.choose_violating_fd(instance, fd_ranking()) == 0
        assert decider.choose_primary_key(instance, []) is None
        assert decider.edit_rhs(instance, fd_ranking()[0], 0) == 0b010
