"""Parallel runs must be byte-identical to serial runs.

The deterministic shard/merge protocol (docs/PARALLEL.md) promises that
any worker count produces exactly the serial FD covers, key sets,
rankings, and DDL.  These tests force real pool dispatch by dropping
the cost-model threshold to zero, then compare against serial ground
truth across seeds — including under fault injection (a simulated kill
mid-shard followed by checkpoint/resume) and budget salvage.
"""

import pytest

import repro.parallel.pool as pool_mod
from repro.core.closure import improved_closure, optimized_closure
from repro.core.normalize import Normalizer, normalize
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.hyfd import HyFD
from repro.discovery.tane import Tane
from repro.io.ddl import schema_to_ddl
from repro.parallel import shutdown_pool
from repro.runtime.checkpointing import load_state
from repro.runtime.faults import FaultPlan, SimulatedKill
from repro.verification.planted import plant_instance

SEEDS = (1, 3, 7, 11)


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
    yield
    shutdown_pool()


def _planted(seed, columns=6, rows=60):
    return plant_instance(seed, num_columns=columns, num_rows=rows).instance


class TestClosureDeterminism:
    def test_sharded_closures_match_serial(self):
        dispatched = 0
        for seed in SEEDS:
            fds = BruteForceFD().discover(_planted(seed))
            if not any(True for _ in fds.items()):
                continue
            for closure in (optimized_closure, improved_closure):
                serial = closure(fds.copy())
                parallel = closure(fds.copy(), n_workers=2)
                assert list(serial.items()) == list(parallel.items())
            dispatched += 1
        # Guard against vacuous passes: at least one seed must have a
        # non-empty cover that actually went through the pool.
        assert dispatched > 0
        assert pool_mod.pool_stats().tasks_dispatched > 0


class TestDiscoveryDeterminism:
    def test_hyfd_parallel_matches_serial(self):
        for seed in SEEDS:
            instance = _planted(seed)
            serial = HyFD().discover(instance)
            algorithm = HyFD(workers=2)
            parallel = algorithm.discover(instance)
            assert list(serial.items()) == list(parallel.items())
            assert algorithm.last_pool_stats is not None
        assert algorithm.last_pool_stats.tasks_dispatched > 0

    def test_tane_parallel_matches_serial(self):
        for seed in SEEDS:
            instance = _planted(seed)
            serial = Tane().discover(instance)
            algorithm = Tane(workers=2)
            parallel = algorithm.discover(instance)
            assert list(serial.items()) == list(parallel.items())
        assert algorithm.last_pool_stats.tasks_dispatched > 0

    def test_worker_counts_do_not_change_the_cover(self):
        instance = _planted(3)
        baseline = list(HyFD().discover(instance).items())
        for workers in (2, 3):
            assert list(HyFD(workers=workers).discover(instance).items()) == (
                baseline
            )


class TestPipelineDeterminism:
    def test_ddl_byte_identical(self):
        for seed in SEEDS:
            instance = _planted(seed)
            serial = normalize(instance)
            parallel = normalize(instance, workers=2)
            assert schema_to_ddl(serial.schema) == schema_to_ddl(parallel.schema)
            assert [step.to_str() for step in serial.steps] == [
                step.to_str() for step in parallel.steps
            ]
            for name, fds in serial.discovered_fds.items():
                assert list(fds.items()) == list(
                    parallel.discovered_fds[name].items()
                )

    def test_tane_pipeline_ddl_byte_identical(self):
        instance = _planted(3)
        serial = normalize(instance, algorithm="tane")
        parallel = normalize(instance, algorithm="tane", workers=2)
        assert schema_to_ddl(serial.schema) == schema_to_ddl(parallel.schema)

    def test_ranking_tie_breaks_are_stable(self):
        # Same chosen_rank / score sequence proves the violating-FD
        # ranking (including tie-breaks) saw identical inputs.
        instance = _planted(3)
        serial = normalize(instance)
        parallel = normalize(instance, workers=2)
        assert [
            (step.chosen_rank, step.num_candidates, step.score)
            for step in serial.steps
        ] == [
            (step.chosen_rank, step.num_candidates, step.score)
            for step in parallel.steps
        ]


class TestFaultsAndResume:
    def test_kill_mid_shard_then_resume_replays_identically(self, tmp_path):
        instance = _planted(3)
        baseline = schema_to_ddl(normalize(instance).schema)

        killed = False
        for at_tick in (2, 9, 33, 100, 250):
            journal = tmp_path / f"kill-{at_tick}.ckpt"
            plan = FaultPlan(mode="kill", at_tick=at_tick)
            try:
                Normalizer(
                    workers=2, checkpoint_path=journal, fault_plan=plan
                ).run(instance)
            except SimulatedKill:
                killed = True
                shutdown_pool()  # the "process died": its pool goes too
                # An early kill may precede the first journal write —
                # resuming from nothing is the contract there.
                state = load_state(journal) if journal.exists() else None
                resumed = Normalizer(workers=2, checkpoint_path=journal).run(
                    instance, resume_state=state
                )
                assert schema_to_ddl(resumed.schema) == baseline
        assert killed, "no fault tick interrupted the run; widen the range"

    def test_budget_breach_salvages_partial_state(self):
        from repro.runtime.errors import BudgetExceeded
        from repro.runtime.governor import Budget, Governor, activate

        instance = _planted(3)
        governor = Governor(Budget(max_candidates=1))
        with activate(governor):
            with pytest.raises(BudgetExceeded) as excinfo:
                Tane(workers=2).discover(instance)
        assert excinfo.value.partial is not None

    def test_budget_salvage_matches_serial_outcome(self):
        # A deadline generous enough to finish: governed parallel and
        # governed serial runs still agree byte-for-byte.
        from repro.runtime.governor import Budget

        instance = _planted(7)
        serial = Normalizer(budget=Budget(deadline_seconds=300)).run(instance)
        parallel = Normalizer(
            budget=Budget(deadline_seconds=300), workers=2
        ).run(instance)
        assert schema_to_ddl(serial.schema) == schema_to_ddl(parallel.schema)


class TestVerifyCampaign:
    def test_campaign_matches_serial(self):
        from repro.verification.runner import verify_seeds

        serial = verify_seeds(range(3), shrink=False)
        parallel = verify_seeds(range(3), shrink=False, workers=2)
        assert parallel.seeds == serial.seeds
        assert parallel.checks_run == serial.checks_run
        assert len(parallel.failures) == len(serial.failures)
        assert parallel.dependency_losses == serial.dependency_losses

    def test_injected_algorithm_objects_stay_serial(self):
        from repro.verification.runner import verify_seeds

        # Algorithm *objects* are not picklable by contract: the
        # campaign must fall back to the serial path, not crash.
        report = verify_seeds(
            range(2),
            shrink=False,
            fd_algorithms={"hyfd": "hyfd", "probe": HyFD()},
            workers=2,
        )
        assert report.checks_run > 0
