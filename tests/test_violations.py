"""Tests for violating-FD identification (paper §6, Algorithm 4)."""

import pytest

from repro.core.violations import find_violating_fds
from repro.model.fd import FD, FDSet


def fdset(num_attrs, *pairs):
    return FDSet(num_attrs, [FD(lhs, rhs) for lhs, rhs in pairs])


class TestCoreCheck:
    def test_fd_with_key_lhs_conforms(self):
        fds = fdset(3, (0b001, 0b110))
        assert find_violating_fds(fds, keys=[0b001]) == []

    def test_fd_with_superkey_lhs_conforms(self):
        fds = fdset(3, (0b011, 0b100))
        assert find_violating_fds(fds, keys=[0b001]) == []

    def test_non_key_lhs_violates(self):
        fds = fdset(3, (0b010, 0b100))
        violating = find_violating_fds(fds, keys=[0b001])
        assert violating == [FD(0b010, 0b100)]

    def test_no_keys_everything_violates(self):
        fds = fdset(3, (0b001, 0b010), (0b010, 0b100))
        assert len(find_violating_fds(fds, keys=[])) == 2

    def test_empty_lhs_skipped(self):
        fds = fdset(3, (0, 0b001), (0b010, 0b100))
        violating = find_violating_fds(fds, keys=[])
        assert violating == [FD(0b010, 0b100)]


class TestNullRule:
    def test_null_lhs_skipped(self):
        fds = fdset(3, (0b010, 0b100))
        assert find_violating_fds(fds, keys=[], null_mask=0b010) == []

    def test_null_elsewhere_irrelevant(self):
        fds = fdset(3, (0b010, 0b100))
        violating = find_violating_fds(fds, keys=[], null_mask=0b101)
        assert violating == [FD(0b010, 0b100)]


class TestPrimaryKeyRule:
    def test_pk_attributes_removed_from_rhs(self):
        fds = fdset(4, (0b0010, 0b1100))
        violating = find_violating_fds(fds, keys=[], primary_key=0b0100)
        assert violating == [FD(0b0010, 0b1000)]

    def test_fd_dropped_when_rhs_becomes_empty(self):
        fds = fdset(3, (0b010, 0b100))
        assert find_violating_fds(fds, keys=[], primary_key=0b100) == []


class TestForeignKeyRule:
    def test_fk_disjoint_from_rhs_ok(self):
        fds = fdset(4, (0b0010, 0b0100))
        violating = find_violating_fds(fds, keys=[], foreign_keys=[0b1001])
        assert violating == [FD(0b0010, 0b0100)]

    def test_fk_inside_r2_ok(self):
        # fk ⊆ lhs ∪ rhs survives in R2
        fds = fdset(4, (0b0010, 0b0100))
        violating = find_violating_fds(fds, keys=[], foreign_keys=[0b0110])
        assert violating == [FD(0b0010, 0b0100)]

    def test_fk_torn_apart_skips_fd(self):
        # fk overlaps rhs AND reaches outside lhs|rhs
        fds = fdset(4, (0b0010, 0b0100))
        assert find_violating_fds(fds, keys=[], foreign_keys=[0b1100]) == []


class Test3NFMode:
    def test_lhs_splitting_fd_removed(self):
        # X={A}, Y={B}: splitting would tear LHS {B,C} apart.
        fds = fdset(3, (0b001, 0b010), (0b110, 0b001))
        bcnf = find_violating_fds(fds, keys=[], target="bcnf")
        tnf = find_violating_fds(fds, keys=[], target="3nf")
        assert FD(0b001, 0b010) in bcnf
        assert FD(0b001, 0b010) not in tnf

    def test_non_splitting_fd_kept(self):
        fds = fdset(3, (0b001, 0b010))
        tnf = find_violating_fds(fds, keys=[], target="3nf")
        assert tnf == [FD(0b001, 0b010)]

    def test_lhs_fully_inside_r2_not_split(self):
        # other LHS {A,B} ⊆ X∪Y with X={A}, Y={B}: not torn apart.
        fds = fdset(3, (0b001, 0b010), (0b011, 0b100))
        tnf = find_violating_fds(fds, keys=[], target="3nf")
        assert FD(0b001, 0b010) in tnf

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            find_violating_fds(fdset(2, (0b1, 0b10)), keys=[], target="5nf")


class TestCombined:
    def test_paper_example_pipeline(self, address):
        """Postcode -> City,Mayor is the violating FD of Table 1."""
        from repro.core.closure import optimized_closure
        from repro.core.key_derivation import derive_keys
        from repro.discovery.bruteforce import BruteForceFD

        extended = optimized_closure(BruteForceFD().discover(address))
        keys = derive_keys(extended, address.full_mask())
        violating = find_violating_fds(extended, keys)
        postcode = address.relation.mask_of(["Postcode"])
        city_mayor = address.relation.mask_of(["City", "Mayor"])
        assert FD(postcode, city_mayor) in violating
