"""Tests for the Figure-3-style foreign-key tree rendering."""

from repro.core.normalize import normalize
from repro.evaluation.snowflake import schema_tree
from repro.model.schema import ForeignKey, Relation, Schema


def snowflake():
    return Schema(
        [
            Relation(
                "fact",
                ("a", "b", "c"),
                primary_key=("a",),
                foreign_keys=[
                    ForeignKey(("b",), "dim1", ("b",)),
                    ForeignKey(("c",), "dim2", ("c",)),
                ],
            ),
            Relation(
                "dim1",
                ("b", "x"),
                primary_key=("b",),
                foreign_keys=[ForeignKey(("x",), "sub", ("x",))],
            ),
            Relation(
                "dim2",
                ("c", "x2"),
                primary_key=("c",),
                foreign_keys=[ForeignKey(("x2",), "sub", ("x",))],
            ),
            Relation("sub", ("x", "y"), primary_key=("x",)),
        ]
    )


class TestSchemaTree:
    def test_root_first(self):
        tree = schema_tree(snowflake())
        lines = tree.splitlines()
        assert lines[0].startswith("fact(")

    def test_children_indented(self):
        tree = schema_tree(snowflake())
        assert "|-- dim1(" in tree
        assert "`-- dim2(" in tree

    def test_shared_dimension_marked(self):
        tree = schema_tree(snowflake())
        assert tree.count("sub(") == 2
        assert tree.count("(see above)") == 1

    def test_every_relation_appears(self):
        tree = schema_tree(snowflake())
        for name in ("fact", "dim1", "dim2", "sub"):
            assert f"{name}(" in tree

    def test_isolated_relation_rendered(self):
        schema = Schema([Relation("lonely", ("a",))])
        assert "lonely(" in schema_tree(schema)

    def test_cycle_terminates(self):
        schema = Schema(
            [
                Relation(
                    "a", ("x",), foreign_keys=[ForeignKey(("x",), "b", ("x",))]
                ),
                Relation(
                    "b", ("x",), foreign_keys=[ForeignKey(("x",), "a", ("x",))]
                ),
            ]
        )
        tree = schema_tree(schema)
        assert "a(" in tree and "b(" in tree

    def test_address_result(self, address):
        result = normalize(address, algorithm="bruteforce")
        tree = schema_tree(result.schema)
        assert tree.splitlines()[0].startswith("address(")
        assert "`-- address_Postcode(" in tree
