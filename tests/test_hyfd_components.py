"""Component-level tests for HyFD's sampler, induction, and validation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import distinct_agree_sets
from repro.discovery.hyfd.induction import (
    apply_agree_set,
    build_positive_cover,
    specialize,
)
from repro.discovery.hyfd.sampler import Sampler
from repro.discovery.hyfd.validation import validate_tree
from repro.structures.fdtree import FDTree
from repro.structures.partitions import PLICache


class TestSampler:
    def test_negative_cover_only_contains_true_agree_sets(self):
        instance = random_instance(3, 4, 20, domain_size=2)
        cache = PLICache(instance)
        sampler = Sampler(instance, cache)
        sampler.initial_rounds()
        truth = set(distinct_agree_sets(instance))
        # duplicate-row pairs agree on everything; that full agree set
        # refutes nothing and is excluded by distinct_agree_sets
        full = instance.full_mask()
        assert sampler.negative_cover - {full} <= truth

    def test_exhaustion_on_tiny_input(self):
        instance = random_instance(1, 2, 3, domain_size=1)
        sampler = Sampler(instance, PLICache(instance))
        rounds = 0
        while not sampler.exhausted and rounds < 100:
            sampler.next_round()
            rounds += 1
        assert sampler.exhausted

    def test_compare_deduplicates(self):
        instance = random_instance(2, 3, 6, domain_size=1)  # all rows equal
        sampler = Sampler(instance, PLICache(instance))
        # all-equal rows agree on everything -> full agree set is still
        # recorded as evidence the first time, None afterwards
        first = sampler.compare(0, 1)
        second = sampler.compare(2, 3)
        assert (first is None) or (second is None)

    def test_comparisons_counted(self):
        instance = random_instance(4, 3, 15, domain_size=2)
        sampler = Sampler(instance, PLICache(instance))
        sampler.initial_rounds()
        assert sampler.comparisons > 0


class TestInduction:
    def test_initial_cover_is_most_general(self):
        tree = build_positive_cover(3, [])
        assert dict(tree.iter_all()) == {0: 0b111}

    def test_agree_set_specializes(self):
        # pair agrees exactly on {A}: refutes {} -> B and {} -> C.
        tree = build_positive_cover(3, [0b001])
        fds = dict(tree.iter_all())
        # {} -> A survives; B and C candidates move to LHS {B}/{C} etc.
        assert fds.get(0, 0) == 0b001
        assert tree.contains_fd(0b010, 2)  # {B} -> C candidate
        assert tree.contains_fd(0b100, 1)  # {C} -> B candidate

    def test_specialize_respects_generalizations(self):
        tree = FDTree(3)
        tree.add(0b010, 0b100)  # {B} -> C
        # specializing {} -> C with agree {A} must not add {B} -> C twice
        specialize(tree, 0, 2, 0b001)
        level2 = list(tree.iter_level(2))
        assert level2 == []

    def test_max_lhs_pruning_drops_large_candidates(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b0100)
        removed = apply_agree_set(tree, 0b1011, max_lhs_size=2)
        assert removed == 1
        # the only legal extension attribute is outside the agree set:
        # none exists below the bound, so nothing may exceed LHS size 2.
        for lhs, _ in tree.iter_all():
            assert lhs.bit_count() <= 2

    def test_antichain_invariant_random(self):
        instance = random_instance(11, 5, 20, domain_size=2)
        agree_sets = distinct_agree_sets(instance)
        tree = build_positive_cover(5, agree_sets)
        stored = list(tree.iter_all())
        for lhs, rhs in stored:
            for other_lhs, other_rhs in stored:
                if other_lhs != lhs and other_lhs & ~lhs == 0:
                    assert not (rhs & other_rhs), "generalization stored twice"


class TestValidation:
    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=18),
    )
    @settings(max_examples=20)
    def test_validation_from_empty_cover_equals_oracle(self, seed, cols, rows):
        """Even with no sampling evidence, validation alone is exact."""
        from repro.discovery.bruteforce import BruteForceFD
        from tests.helpers import canon_fds

        instance = random_instance(seed, cols, rows, domain_size=2)
        cache = PLICache(instance)
        tree = build_positive_cover(cols, [])
        validate_tree(tree, cache, sampler=None)
        got = {
            (lhs, attr)
            for lhs, rhs in tree.iter_all()
            for attr in range(cols)
            if rhs >> attr & 1
        }
        assert got == canon_fds(BruteForceFD().discover(instance))

    def test_switch_threshold_zero_forces_sampling(self):
        instance = random_instance(5, 4, 25, domain_size=2)
        cache = PLICache(instance)
        sampler = Sampler(instance, cache)
        tree = build_positive_cover(4, [])
        # threshold 0 switches on any failure until the sampler drains.
        validate_tree(tree, cache, sampler=sampler, switch_threshold=0.0)
        from repro.discovery.bruteforce import BruteForceFD
        from tests.helpers import canon_fds

        got = {
            (lhs, attr)
            for lhs, rhs in tree.iter_all()
            for attr in range(4)
            if rhs >> attr & 1
        }
        assert got == canon_fds(BruteForceFD().discover(instance))
