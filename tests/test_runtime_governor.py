"""Tests for budgets, the governor, and the ambient checkpoint machinery."""

import pytest

from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.governor import (
    Budget,
    Governor,
    activate,
    add_candidates,
    checkpoint,
    current_governor,
    parse_duration,
    parse_memory,
    suspended,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudget:
    def test_defaults_are_unbounded(self):
        assert Budget().unbounded

    def test_any_ceiling_makes_it_bounded(self):
        assert not Budget(deadline_seconds=1.0).unbounded
        assert not Budget(max_memory_bytes=1 << 20).unbounded
        assert not Budget(max_candidates=100).unbounded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0},
            {"deadline_seconds": -1},
            {"max_memory_bytes": 0},
            {"max_candidates": -5},
            {"check_interval": 0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(InputError):
            Budget(**kwargs)


class TestParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [("5s", 5.0), ("250ms", 0.25), ("2m", 120.0), ("1.5h", 5400.0), ("3", 3.0)],
    )
    def test_parse_duration(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "fast", "-1s", "0s"])
    def test_parse_duration_rejects(self, text):
        with pytest.raises(InputError):
            parse_duration(text)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512MB", 512 * 1024**2),
            ("2gb", 2 * 1024**3),
            ("300k", 300 * 1024),
            ("1024", 1024),
        ],
    )
    def test_parse_memory(self, text, expected):
        assert parse_memory(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "-1mb", "0"])
    def test_parse_memory_rejects(self, text):
        with pytest.raises(InputError):
            parse_memory(text)


class TestGovernorDeadline:
    def test_breach_raised_at_probe(self):
        clock = FakeClock()
        governor = Governor(
            Budget(deadline_seconds=1.0, check_interval=1), clock=clock
        )
        governor.tick("setup")  # within budget
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as exc_info:
            governor.tick("lattice")
        exc = exc_info.value
        assert exc.reason == "deadline"
        assert exc.stage == "lattice"
        assert exc.observed > exc.limit
        assert governor.breach is exc

    def test_probe_only_every_check_interval(self):
        clock = FakeClock()
        governor = Governor(
            Budget(deadline_seconds=1.0, check_interval=256), clock=clock
        )
        clock.advance(5.0)  # already expired, but probes are rationed
        for _ in range(255):
            governor.tick()
        with pytest.raises(BudgetExceeded):
            governor.tick()  # tick #256 probes and sees the breach

    def test_remaining_seconds(self):
        clock = FakeClock()
        governor = Governor(Budget(deadline_seconds=10.0), clock=clock)
        clock.advance(4.0)
        assert governor.remaining_seconds() == pytest.approx(6.0)
        clock.advance(100.0)
        assert governor.remaining_seconds() == 0.0
        assert Governor(Budget(), clock=clock).remaining_seconds() is None


class TestGovernorCandidates:
    def test_cap_enforced_exactly(self):
        governor = Governor(Budget(max_candidates=10))
        governor.add_candidates(10, "pli")  # exactly at the cap: fine
        with pytest.raises(BudgetExceeded) as exc_info:
            governor.add_candidates(1, "pli")
        assert exc_info.value.reason == "candidates"
        assert exc_info.value.observed == 11


class TestGovernorMemory:
    def test_impossible_ceiling_breaches_immediately(self):
        governor = Governor(Budget(max_memory_bytes=1, check_interval=1))
        with pytest.raises(BudgetExceeded) as exc_info:
            governor.tick("anything")
        assert exc_info.value.reason == "memory"


class TestAmbientGovernor:
    def test_checkpoint_is_noop_without_governor(self):
        assert current_governor() is None
        checkpoint("nowhere")  # must not raise
        add_candidates(1_000_000, "nowhere")

    def test_activate_installs_and_restores(self):
        outer = Governor(Budget(max_candidates=100))
        inner = Governor(Budget(max_candidates=5))
        with activate(outer):
            assert current_governor() is outer
            with activate(inner):
                assert current_governor() is inner
                with pytest.raises(BudgetExceeded):
                    add_candidates(6)
            assert current_governor() is outer
        assert current_governor() is None

    def test_suspended_masks_breaches(self):
        clock = FakeClock()
        governor = Governor(
            Budget(deadline_seconds=1.0, check_interval=1), clock=clock
        )
        clock.advance(10.0)
        with activate(governor):
            with suspended():
                checkpoint("salvage")  # expired but masked: no raise
            with pytest.raises(BudgetExceeded):
                checkpoint("hot-loop")

    def test_suspended_without_governor(self):
        with suspended():
            checkpoint()


class TestSubgovernor:
    def test_fraction_of_remaining_deadline(self):
        clock = FakeClock()
        governor = Governor(Budget(deadline_seconds=10.0), clock=clock)
        clock.advance(4.0)
        sub = governor.subgovernor(0.5)
        assert sub.budget.deadline_seconds == pytest.approx(3.0)

    def test_candidates_carry_over_and_absorb_back(self):
        governor = Governor(Budget(max_candidates=10))
        governor.add_candidates(7)
        sub = governor.subgovernor(0.5)
        assert sub.candidates == 7
        with pytest.raises(BudgetExceeded):
            sub.add_candidates(4)  # 7 + 4 > 10: rungs share the cap
        governor.absorb(sub)
        assert governor.candidates == 11

    def test_no_deadline_stays_unbounded(self):
        governor = Governor(Budget(max_candidates=10))
        assert governor.subgovernor(0.5).budget.deadline_seconds is None
