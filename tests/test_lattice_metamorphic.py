"""Engine/backend metamorphic tests: the pipeline is representation-blind.

The FD-tree engine (``level`` vs ``legacy``) and the kernel backend
(``python`` vs ``numpy``) are pure representation choices; discovered
covers, keys, and the final decomposed schema must be byte-identical
across the whole grid.  This is the end-to-end counterpart of the
per-operation differential suite in ``test_fdtree_differential.py``.
"""

import pytest

from repro import kernels
from repro.datagen.random_tables import random_instance
from repro.structures import fdtree
from repro.verification.planted import plant_instance

NUMPY = kernels.numpy_available()

GRID = [
    ("level", "python"),
    ("legacy", "python"),
    ("level", "numpy"),
    ("legacy", "numpy"),
]


def grid():
    return [g for g in GRID if g[1] != "numpy" or NUMPY]


@pytest.fixture(autouse=True)
def _restore():
    yield
    fdtree.set_engine(None)
    kernels.set_backend(None)


def per_config(fn):
    """Run ``fn`` once per (engine, backend) config; return the map."""
    results = {}
    for engine, backend in grid():
        fdtree.set_engine(engine)
        kernels.set_backend(backend)
        results[(engine, backend)] = fn()
    return results


def assert_uniform(results):
    baseline_key = ("level", "python")
    baseline = results[baseline_key]
    for config, value in results.items():
        assert value == baseline, f"{config} diverges from {baseline_key}"


INSTANCES = [
    lambda: random_instance(71, 5, 120, domain_size=2, null_rate=0.3),
    lambda: random_instance(72, 4, 200, domain_size=[2, 3, 50, 200]),
    lambda: plant_instance(73, num_columns=6, num_rows=120, null_rate=0.15).instance,
    lambda: random_instance(74, 3, 1, domain_size=2),  # single row
    lambda: random_instance(75, 3, 0, domain_size=2),  # empty relation
]


@pytest.mark.parametrize("make", INSTANCES)
@pytest.mark.parametrize("null_equals_null", [True, False])
class TestDiscoveryInvariance:
    def test_hyfd_tane_dfd_covers_identical(self, make, null_equals_null):
        from repro.discovery.base import discover_fds

        instance = make()

        def discover():
            out = {}
            for algorithm in ("hyfd", "tane", "dfd"):
                instance.invalidate_caches()
                fds = discover_fds(
                    instance, algorithm, null_equals_null=null_equals_null
                )
                out[algorithm] = sorted((fd.lhs, fd.rhs) for fd in fds)
            return out

        assert_uniform(per_config(discover))


class TestPipelineInvariance:
    def test_decomposed_schema_identical(self):
        from repro.core.normalize import normalize
        from repro.io.ddl import schema_to_ddl

        instance = plant_instance(
            81, num_columns=6, num_rows=100, null_rate=0.1
        ).instance

        def run():
            instance.invalidate_caches()
            result = normalize(instance)
            return schema_to_ddl(result.schema, result.instances)

        assert_uniform(per_config(run))

    def test_incremental_engine_identical(self):
        from repro.incremental import ChangeBatch, IncrementalNormalizer

        base = random_instance(82, 4, 60, domain_size=3, null_rate=0.2)
        extra = random_instance(83, 4, 12, domain_size=3, null_rate=0.2)
        rows = [extra.row(r) for r in range(extra.num_rows)]
        batches = [
            ChangeBatch(inserts=rows[:6], deletes=()),
            ChangeBatch(inserts=rows[6:], deletes=(2, 11)),
        ]

        def run():
            base.invalidate_caches()
            engine = IncrementalNormalizer(base)
            for batch in batches:
                engine.apply_batch(batch)
            return engine.ddl()

        assert_uniform(per_config(run))


@pytest.mark.fuzz
class TestVerifyCampaignInvariance:
    """The seeded end-to-end verification campaign passes under every
    grid config (nightly; the per-config campaigns also run as
    dedicated CI legs via ``repro verify --fdtree``)."""

    @pytest.mark.parametrize(
        "engine,backend",
        [pytest.param(e, b, id=f"{e}-{b}") for e, b in GRID],
    )
    def test_verify_seeds(self, engine, backend):
        if backend == "numpy" and not NUMPY:
            pytest.skip("numpy not installed")
        from repro.verification.runner import main_verify

        rc = main_verify(
            [
                "--seeds", "6", "--rows", "16", "--quiet",
                "--kernel", backend, "--fdtree", engine,
            ]
        )
        assert rc == 0
