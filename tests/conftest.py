"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.io.datasets import address_example, denormalized_university

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def address():
    """The paper's Table 1 running example."""
    return address_example()


@pytest.fixture()
def university():
    """The §5 professor/teaches/class join."""
    return denormalized_university()
