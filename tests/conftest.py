"""Shared fixtures, hypothesis configuration, and a timeout shim."""

from __future__ import annotations

import importlib.util
import signal

import pytest
from hypothesis import HealthCheck, settings

from repro.io.datasets import address_example, denormalized_university

# ----------------------------------------------------------------------
# pytest-timeout shim: CI installs the real plugin; environments without
# it still honor `--timeout` / `@pytest.mark.timeout(n)` via SIGALRM so
# a hung governed run fails the suite instead of wedging it.
# ----------------------------------------------------------------------
_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")

if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        parser.addoption(
            "--timeout",
            type=float,
            default=0,
            help="per-test timeout in seconds (0 disables; shim for "
            "the pytest-timeout plugin)",
        )

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test timeout (pytest-timeout shim)",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = item.config.getoption("--timeout")
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            seconds = float(marker.args[0])
        if not seconds or not _HAVE_SIGALRM:
            yield
            return

        def _expired(signum, frame):
            pytest.fail(f"test exceeded the {seconds:g}s timeout", pytrace=False)

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def address():
    """The paper's Table 1 running example."""
    return address_example()


@pytest.fixture()
def university():
    """The §5 professor/teaches/class join."""
    return denormalized_university()
