"""Tests for key derivation from extended FDs (paper §5, Lemma 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import optimized_closure
from repro.core.key_derivation import derive_keys
from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.ucc import NaiveUCC
from repro.model.fd import FD, FDSet
from repro.structures.settrie import SetTrie
from tests.helpers import fd_holds


class TestBasics:
    def test_key_is_lhs_covering_relation(self):
        fds = FDSet(3, [FD(0b001, 0b110), FD(0b010, 0b100)])
        assert derive_keys(fds, 0b111) == [0b001]

    def test_no_keys(self):
        fds = FDSet(3, [FD(0b001, 0b010)])
        assert derive_keys(fds, 0b111) == []

    def test_multiple_keys_sorted(self):
        fds = FDSet(2, [FD(0b01, 0b10), FD(0b10, 0b01)])
        assert derive_keys(fds, 0b11) == [0b01, 0b10]

    def test_address_example(self, address):
        fds = optimized_closure(BruteForceFD().discover(address))
        keys = derive_keys(fds, address.full_mask())
        first_last = address.relation.mask_of(["First", "Last"])
        assert first_last in keys


class TestLemma2:
    """Every key contained in some FD LHS is itself derivable."""

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=18),
    )
    @settings(max_examples=25)
    def test_keys_below_fd_lhss_are_derived(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=3)
        extended = optimized_closure(BruteForceFD().discover(instance))
        derived = set(derive_keys(extended, instance.full_mask()))
        minimal_keys = [k for k in NaiveUCC().discover(instance) if k]
        for lhs, _ in extended.items():
            for key in minimal_keys:
                if key & ~lhs == 0:  # key inside this LHS
                    assert key in derived or any(
                        d & ~key == 0 for d in derived
                    )

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=18),
    )
    @settings(max_examples=25)
    def test_derived_keys_are_actual_keys(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=3)
        extended = optimized_closure(BruteForceFD().discover(instance))
        full = instance.full_mask()
        for key in derive_keys(extended, full):
            assert fd_holds(instance, key, full & ~key)


class TestMissingKeysAreFine:
    def test_university_key_not_derivable(self, university):
        """The §5 example: {name, label} is a key yet no FD LHS."""
        extended = optimized_closure(BruteForceFD().discover(university))
        keys = derive_keys(extended, university.full_mask())
        name_label = university.relation.mask_of(["name", "label"])
        assert name_label not in keys  # derivation misses it (expected!)
        # ... but BCNF checking never needs it (Lemma 2): no violating
        # FD has a LHS containing {name, label}.
        trie = SetTrie()
        trie.insert(name_label)
        for lhs, _ in extended.items():
            if trie.contains_subset_of(lhs):
                assert lhs | extended.rhs_of(lhs) == university.full_mask()
