"""Tests for the schema-recovery metrics, timing, and table rendering."""

import pytest

from repro.evaluation.metrics import GoldRelation, evaluate_schema_recovery
from repro.evaluation.reporting import format_table
from repro.evaluation.timing import Stopwatch
from repro.model.schema import ForeignKey, Relation, Schema


def _fs(*names):
    return frozenset(names)


def gold_pair():
    return [
        GoldRelation(
            "orders",
            _fs("oid", "customer", "date"),
            key=_fs("oid"),
            references=(("customer", "customers"),),
        ),
        GoldRelation("customers", _fs("customer", "name"), key=_fs("customer")),
    ]


class TestPerfectRecovery:
    def make_recovered(self):
        customers = Relation(
            "customers_rec", ("customer", "name"), primary_key=("customer",)
        )
        orders = Relation(
            "orders_rec",
            ("oid", "customer", "date"),
            primary_key=("oid",),
            foreign_keys=[
                ForeignKey(("customer",), "customers_rec", ("customer",))
            ],
        )
        return Schema([orders, customers])

    def test_perfect_scores(self):
        report = evaluate_schema_recovery(self.make_recovered(), gold_pair())
        assert report.pair_precision == 1.0
        assert report.pair_recall == 1.0
        assert report.pair_f1 == 1.0
        assert report.mean_jaccard == 1.0
        assert report.key_accuracy == 1.0
        assert report.fk_recall == 1.0
        assert sorted(report.perfectly_recovered) == ["customers", "orders"]

    def test_to_str_lists_matches(self):
        text = evaluate_schema_recovery(self.make_recovered(), gold_pair()).to_str()
        assert "orders -> orders_rec" in text
        assert "precision=1.000" in text


class TestImperfectRecovery:
    def test_universal_relation_has_low_precision(self):
        universal = Schema(
            [Relation("u", ("oid", "customer", "date", "name"))]
        )
        report = evaluate_schema_recovery(universal, gold_pair())
        assert report.pair_recall == 1.0
        assert report.pair_precision < 1.0

    def test_oversplit_has_low_recall(self):
        split = Schema(
            [
                Relation("a", ("oid",)),
                Relation("b", ("customer", "name")),
                Relation("c", ("date",)),
            ]
        )
        report = evaluate_schema_recovery(split, gold_pair())
        assert report.pair_precision == 1.0
        assert report.pair_recall < 1.0

    def test_wrong_key_counted(self):
        customers = Relation(
            "c", ("customer", "name"), primary_key=("name",)
        )
        orders = Relation(
            "o", ("oid", "customer", "date"), primary_key=("oid",)
        )
        report = evaluate_schema_recovery(Schema([orders, customers]), gold_pair())
        assert report.key_accuracy == pytest.approx(0.5)

    def test_wildcard_attributes_ignored(self):
        gold = [
            GoldRelation(
                "r",
                _fs("a", "b", "const"),
                key=_fs("a"),
                wildcard=_fs("const"),
            ),
            GoldRelation("s", _fs("c", "d"), key=_fs("c")),
        ]
        # const placed "wrongly" with s — must not hurt any score
        recovered = Schema(
            [
                Relation("r1", ("a", "b"), primary_key=("a",)),
                Relation("s1", ("c", "d", "const"), primary_key=("c",)),
            ]
        )
        report = evaluate_schema_recovery(recovered, gold)
        assert report.pair_precision == 1.0
        assert report.pair_recall == 1.0
        assert report.mean_jaccard == 1.0


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.lap("x"):
            pass
        with watch.lap("x"):
            pass
        assert watch.seconds("x") >= 0.0
        assert set(watch.as_dict()) == {"x"}

    def test_unknown_lap_is_zero(self):
        assert Stopwatch().seconds("nope") == 0.0


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        header_pipe = lines[2].index("|")
        for line in lines[4:]:
            assert line.index("|") == header_pipe

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a"], [["x", "y"]])

    def test_no_title(self):
        table = format_table(["h"], [["v"]])
        assert table.splitlines()[0] == "h"
