"""Tests for the extended scoring features and decider."""

import pytest

from repro.core.normalize import normalize
from repro.core.scoring import DistinctEstimator, rank_violating_fds
from repro.extensions.scoring_features import (
    ExtendedScoringDecider,
    cardinality_ratio_score,
    coverage_score,
    extended_scores,
    name_score,
)
from repro.model.fd import FD
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def make(columns, rows):
    return RelationInstance.from_rows(Relation("t", tuple(columns)), rows)


class TestNameScore:
    def test_keyish_suffixes(self):
        instance = make(["customer_id", "order_key", "name"], [(1, 2, 3)])
        assert name_score(instance, 0b001) == 1.0
        assert name_score(instance, 0b010) == 1.0
        assert name_score(instance, 0b100) == 0.0
        assert name_score(instance, 0b011) == 1.0
        assert name_score(instance, 0b101) == 0.5

    def test_case_insensitive(self):
        instance = make(["CustomerID", "x"], [(1, 2)])
        assert name_score(instance, 0b01) == 1.0

    def test_empty_lhs(self):
        instance = make(["a"], [(1,)])
        assert name_score(instance, 0) == 0.0


class TestCardinalityScore:
    def test_low_cardinality_scores_high(self):
        instance = make(["x"], [(1,)] * 9 + [(2,)])
        assert cardinality_ratio_score(instance, 0b1) == pytest.approx(0.8)

    def test_unique_scores_zero(self):
        instance = make(["x"], [(i,) for i in range(10)])
        assert cardinality_ratio_score(instance, 0b1) == 0.0

    def test_empty_relation(self):
        instance = RelationInstance(Relation("t", ("x",)), [[]])
        assert cardinality_ratio_score(instance, 0b1) == 0.0


class TestCoverageScore:
    def test_exclusive_rhs(self):
        from repro.core.scoring import ViolatingFDScore

        a = ViolatingFDScore(FD(0b0001, 0b0110), 1, 1, 1, 1)
        b = ViolatingFDScore(FD(0b1000, 0b0100), 1, 1, 1, 1)
        # a's rhs {1,2}; b also covers {2} -> exclusive = {1} -> 0.5
        assert coverage_score(a, [a, b]) == pytest.approx(0.5)
        # b's rhs {2} fully shared -> 0.0
        assert coverage_score(b, [a, b]) == pytest.approx(0.0)


class TestExtendedRanking:
    def test_name_feature_can_flip_ranking(self):
        # two equally-shaped violating FDs; only the column names differ
        instance = make(
            ["plain", "dep1", "group_id", "dep2"],
            [(1, "a", 1, "x"), (1, "a", 2, "y"), (2, "b", 1, "x"), (2, "b", 2, "y")],
        )
        fds = [FD(0b0001, 0b0010), FD(0b0100, 0b1000)]
        base = rank_violating_fds(
            instance, fds, DistinctEstimator(instance, exact=True)
        )
        enriched = extended_scores(instance, base, extras_weight=5.0)
        assert enriched[0].base.fd.lhs == 0b0100  # group_id wins on name

    def test_zero_weight_recovers_base_order(self):
        instance = make(
            ["a", "b", "c_id", "d"],
            [(1, "x", 1, "y"), (2, "x", 2, "y")],
        )
        fds = [FD(0b0001, 0b0010), FD(0b0100, 0b1000)]
        base = rank_violating_fds(
            instance, fds, DistinctEstimator(instance, exact=True)
        )
        enriched = extended_scores(instance, base, extras_weight=0.0)
        assert [e.base.fd for e in enriched] == [s.fd for s in base]

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ExtendedScoringDecider(extras_weight=-1)


class TestExtendedDecider:
    def test_pipeline_integration(self, address):
        result = normalize(
            address,
            algorithm="bruteforce",
            decider=ExtendedScoringDecider(),
        )
        # the address example has an unambiguous best split; the
        # extended decider must still find it and finish in BCNF
        column_sets = {
            frozenset(i.columns) for i in result.instances.values()
        }
        assert frozenset({"Postcode", "City", "Mayor"}) in column_sets

    def test_empty_rankings(self, address):
        decider = ExtendedScoringDecider()
        assert decider.choose_violating_fd(address, []) is None
        assert decider.choose_primary_key(address, []) is None

    def test_key_choice_prefers_keyish_names(self):
        from repro.core.scoring import KeyScore

        instance = make(["data", "row_id"], [(1, 2)])
        ranking = [
            KeyScore(0b01, 1.0, 1.0, 1.0),     # "data", slightly better base
            KeyScore(0b10, 0.95, 1.0, 1.0),    # "row_id"
        ]
        decider = ExtendedScoringDecider(extras_weight=3.0)
        assert decider.choose_primary_key(instance, ranking) == 1
