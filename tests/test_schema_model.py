"""Unit tests for Relation, ForeignKey, and Schema."""

import pytest

from repro.model.schema import ForeignKey, Relation, Schema


class TestForeignKey:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            ForeignKey(("a", "b"), "t", ("x",))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ForeignKey((), "t", ())

    def test_to_str(self):
        fk = ForeignKey(("a",), "t", ("x",))
        assert fk.to_str() == "(a) -> t(x)"


class TestRelation:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation("r", ("a", "a"))

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError, match="not in relation"):
            Relation("r", ("a",), primary_key=("b",))

    def test_column_index(self):
        rel = Relation("r", ("a", "b", "c"))
        assert rel.column_index("b") == 1

    def test_column_index_unknown(self):
        with pytest.raises(ValueError, match="no column"):
            Relation("r", ("a",)).column_index("z")

    def test_mask_roundtrip(self):
        rel = Relation("r", ("a", "b", "c"))
        assert rel.names_of(rel.mask_of(["a", "c"])) == ("a", "c")

    def test_primary_key_mask(self):
        rel = Relation("r", ("a", "b", "c"), primary_key=("a", "c"))
        assert rel.primary_key_mask == 0b101

    def test_primary_key_mask_absent(self):
        assert Relation("r", ("a",)).primary_key_mask == 0

    def test_foreign_key_masks(self):
        rel = Relation(
            "r", ("a", "b"), foreign_keys=[ForeignKey(("b",), "t", ("x",))]
        )
        assert rel.foreign_key_masks() == [0b10]

    def test_to_str_marks_key(self):
        rel = Relation("r", ("a", "b"), primary_key=("a",))
        assert rel.to_str() == "r(*a*, b)"


class TestSchema:
    def test_duplicate_names_rejected(self):
        schema = Schema([Relation("r", ("a",))])
        with pytest.raises(ValueError, match="duplicate"):
            schema.add(Relation("r", ("b",)))

    def test_lookup_and_contains(self):
        schema = Schema([Relation("r", ("a",))])
        assert "r" in schema
        assert schema["r"].columns == ("a",)

    def test_unique_name(self):
        schema = Schema([Relation("r", ("a",)), Relation("r_2", ("b",))])
        assert schema.unique_name("r") == "r_3"
        assert schema.unique_name("fresh") == "fresh"

    def test_referencing(self):
        target = Relation("t", ("x",), primary_key=("x",))
        source = Relation(
            "s", ("x", "y"), foreign_keys=[ForeignKey(("x",), "t", ("x",))]
        )
        schema = Schema([target, source])
        hits = schema.referencing("t")
        assert len(hits) == 1
        assert hits[0][0].name == "s"

    def test_remove(self):
        schema = Schema([Relation("r", ("a",))])
        schema.remove("r")
        assert "r" not in schema
        assert len(schema) == 0

    def test_to_str_lists_fks(self):
        source = Relation(
            "s", ("x",), foreign_keys=[ForeignKey(("x",), "t", ("x",))]
        )
        text = Schema([source]).to_str()
        assert "FK s.(x) -> t(x)" in text
