"""Tests for the columnar partition engine.

Covers the CSR stripped-partition layout, the shared value encoding
(including NULL-semantics edge cases), the single-pass multi-RHS
validator, and the PLI cache's popcount index / LRU bound / counters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.hyfd.induction import build_positive_cover
from repro.discovery.hyfd.validation import validate_tree
from repro.model.attributes import iter_bits
from repro.structures.encoding import EncodedRelation, encode_column
from repro.structures.partitions import (
    PLICache,
    StrippedPartition,
    column_value_ids,
)


def signature(partition):
    return {frozenset(cluster) for cluster in partition.clusters}


class TestCSRLayout:
    def test_offsets_are_csr(self):
        p = StrippedPartition([[0, 1], [2, 3, 4]], 5)
        assert list(p.offsets) == [0, 2, 5]
        assert list(p.row_data) == [0, 1, 2, 3, 4]
        assert p.num_clusters == 2

    def test_cluster_accessors_match(self):
        p = StrippedPartition([[1, 3], [0, 2, 4]], 5)
        assert p.cluster(0) == [1, 3]
        assert p.cluster(1) == [0, 2, 4]
        assert [list(c) for c in p.iter_clusters()] == p.clusters

    def test_singletons_stripped_by_constructor(self):
        p = StrippedPartition([[0], [1, 2], [3]], 4)
        assert signature(p) == {frozenset({1, 2})}

    def test_from_value_ids_matches_from_column(self):
        values = ["a", "b", "a", None, None, "b", "c"]
        for nen in (True, False):
            codes, _, null_code = encode_column(values, nen)
            via_ids = StrippedPartition.from_value_ids(codes, null_code)
            via_column = StrippedPartition.from_column(values, nen)
            assert via_ids.clusters == via_column.clusters

    def test_null_cluster_ordered_last(self):
        # NULLs appear first in the data but their cluster stays last,
        # matching the historical raw-value grouping order.
        p = StrippedPartition.from_column([None, None, "x", "x"])
        assert p.clusters == [[2, 3], [0, 1]]


class TestEncoding:
    def test_codes_match_column_value_ids(self):
        instance = random_instance(3, 4, 30, domain_size=3, null_rate=0.3)
        for nen in (True, False):
            encoding = instance.encoded(nen)
            for attr in range(instance.arity):
                assert list(encoding.codes[attr]) == column_value_ids(
                    instance.columns_data[attr], nen
                )

    def test_encoding_memoized_per_semantics(self):
        instance = random_instance(4, 3, 10)
        assert instance.encoded(True) is instance.encoded(True)
        assert instance.encoded(False) is instance.encoded(False)
        assert instance.encoded(True) is not instance.encoded(False)

    def test_encoding_invalidated_on_row_append(self):
        instance = random_instance(4, 2, 5)
        first = instance.encoded()
        for index in range(instance.arity):
            instance.columns_data[index].append("fresh")
        second = instance.encoded()
        assert second is not first
        assert second.num_rows == 6

    def test_all_null_column_null_equals_null(self):
        codes, cardinality, null_code = encode_column([None, None, None], True)
        assert list(codes) == [0, 0, 0]
        assert cardinality == 1
        assert null_code == 0
        p = StrippedPartition.from_value_ids(codes, null_code)
        assert signature(p) == {frozenset({0, 1, 2})}

    def test_all_null_column_null_not_equal(self):
        codes, cardinality, null_code = encode_column([None, None, None], False)
        assert len(set(codes)) == 3
        assert cardinality == 3
        assert null_code is None
        p = StrippedPartition.from_value_ids(codes, null_code)
        assert p.is_unique  # every NULL is its own stripped singleton

    def test_single_non_null_value_column(self):
        values = [None, "only", None]
        same = encode_column(values, True)[0]
        assert same[0] == same[2] != same[1]
        distinct_codes, _, null_code = encode_column(values, False)
        assert len(set(distinct_codes)) == 3
        assert null_code is None
        assert StrippedPartition.from_value_ids(distinct_codes).is_unique

    def test_agree_set_null_semantics(self):
        encoding_eq = EncodedRelation.encode([[None, None], ["x", "x"]], True)
        assert encoding_eq.agree_set(0, 1) == 0b11
        encoding_ne = EncodedRelation.encode([[None, None], ["x", "x"]], False)
        assert encoding_ne.agree_set(0, 1) == 0b10  # NULLs never agree

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=25)
    def test_agree_set_matches_probe_loop(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2, null_rate=0.3)
        for nen in (True, False):
            encoding = instance.encoded(nen)
            probes = [
                column_value_ids(instance.columns_data[i], nen)
                for i in range(cols)
            ]
            for left in range(rows):
                for right in range(left + 1, min(rows, left + 4)):
                    expected = 0
                    for attr in range(cols):
                        if probes[attr][left] == probes[attr][right]:
                            expected |= 1 << attr
                    assert encoding.agree_set(left, right) == expected


class TestIntersectIds:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=25),
    )
    @settings(max_examples=40)
    def test_matches_general_intersect(self, seed, rows):
        instance = random_instance(seed, 3, rows, domain_size=2, null_rate=0.2)
        encoding = instance.encoded()
        a = StrippedPartition.from_value_ids(
            encoding.codes[0], encoding.null_codes[0]
        )
        b = StrippedPartition.from_value_ids(
            encoding.codes[1], encoding.null_codes[1]
        )
        assert a.intersect_ids(encoding.codes[1]).clusters == a.intersect(b).clusters

    def test_probe_buffer_left_clean(self):
        # The shared probe buffer belongs to the python backend; pin it
        # so the assertion is meaningful even when numpy is the default.
        from repro import kernels
        from repro.kernels import pybackend

        kernels.set_backend("python")
        try:
            instance = random_instance(1, 3, 200, domain_size=3)
            a = StrippedPartition.from_column(instance.columns_data[0])
            b = StrippedPartition.from_column(instance.columns_data[1])
            a.intersect(b)
            assert all(v == -1 for v in pybackend._PROBE_BUFFER)
            # a sparse partition takes the element-wise reset path
            sparse = StrippedPartition([[0, 1]], 200)
            a.intersect(sparse)
            assert all(v == -1 for v in pybackend._PROBE_BUFFER)
        finally:
            kernels.set_backend(None)


class TestMultiRHSValidator:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40)
    def test_matches_per_attribute_scan(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2, null_rate=0.2)
        cache = PLICache(instance)
        partition = cache.get(0b1)
        attrs = list(range(1, cols))
        probes = [cache.probe(a) for a in attrs]
        got = partition.find_violations(attrs, probes)
        for attr, probe in zip(attrs, probes):
            assert got.get(attr) == partition.find_violating_pair(probe)

    def test_empty_rhs_list(self):
        p = StrippedPartition([[0, 1]], 2)
        assert p.find_violations([], []) == {}

    def test_single_sweep_per_lhs_and_level(self, monkeypatch):
        """One partition scan per (LHS, level) regardless of RHS fan-out."""
        # a key column plus 4 dependent columns: every {A} -> X is valid,
        # so validation of LHS {A} must check 4 RHS attributes.
        instance = random_instance(7, 5, 30, domain_size=2)
        cache = PLICache(instance)

        sweeps: list[tuple[int, ...]] = []
        original_multi = StrippedPartition.find_violations
        original_single = StrippedPartition.find_violating_pair

        def counting_multi(self, rhs_attrs, probes):
            sweeps.append(tuple(rhs_attrs))
            return original_multi(self, rhs_attrs, probes)

        def forbidden_single(self, probe):  # pragma: no cover - must not run
            raise AssertionError(
                "validation must use the multi-RHS single-pass validator"
            )

        monkeypatch.setattr(StrippedPartition, "find_violations", counting_multi)
        monkeypatch.setattr(
            StrippedPartition, "find_violating_pair", forbidden_single
        )

        tree = build_positive_cover(5, [])
        validate_tree(tree, cache, sampler=None)

        # Every sweep covers the full RHS fan-out of its LHS node at once:
        # the number of sweeps equals the number of validated LHS nodes,
        # never the number of (LHS, RHS) pairs.
        assert sweeps, "validation ran no sweeps"
        multi_rhs_sweeps = [s for s in sweeps if len(s) > 1]
        assert multi_rhs_sweeps, "no sweep validated several RHS at once"
        # the root node {} -> all 5 attributes is one sweep, not five
        assert sweeps[0] == (0, 1, 2, 3, 4)


class TestPLICacheEngine:
    def test_stats_counters(self):
        instance = random_instance(2, 4, 20, domain_size=2)
        cache = PLICache(instance)
        assert cache.stats.hits == cache.stats.misses == 0
        cache.get(0b11)
        assert cache.stats.misses == 1
        cache.get(0b11)
        assert cache.stats.hits == 1
        assert cache.stats.evictions == 0
        assert cache.stats.as_dict() == {
            "pli_hits": 1,
            "pli_misses": 1,
            "pli_evictions": 0,
        }

    def test_invalid_bound_rejected(self):
        instance = random_instance(2, 3, 10)
        with pytest.raises(ValueError):
            PLICache(instance, max_partitions=0)

    def test_lru_eviction_bounds_cache(self):
        instance = random_instance(3, 6, 40, domain_size=2)
        cache = PLICache(instance, max_partitions=3)
        masks = [0b11, 0b101, 0b110, 0b1100, 0b1010, 0b111]
        for mask in masks:
            cache.get(mask)
        assert cache.stats.evictions > 0
        # permanent entries (empty set + singles) are never evicted
        assert 0 in cache._cache
        for attr in range(6):
            assert (1 << attr) in cache._cache
        multi = [m for m in cache._cache if m.bit_count() >= 2]
        assert len(multi) <= 3

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2**5 - 1),
    )
    @settings(max_examples=30)
    def test_results_identical_under_eviction(self, seed, mask):
        instance = random_instance(seed, 5, 25, domain_size=2, null_rate=0.2)
        unbounded = PLICache(instance)
        bounded = PLICache(instance, max_partitions=2)
        # thrash the bounded cache first
        for m in (0b11, 0b110, 0b1100, 0b11000, 0b10001):
            bounded.get(m)
        assert signature(bounded.get(mask)) == signature(unbounded.get(mask))

    def test_popcount_index_prefers_largest_subset(self):
        instance = random_instance(5, 6, 30, domain_size=2)
        cache = PLICache(instance)
        cache.get(0b111)  # caches 2- and 3-attribute products
        assert cache._best_cached_subset(0b1111) == 0b111

    def test_eviction_keeps_index_consistent(self):
        instance = random_instance(6, 6, 30, domain_size=2)
        cache = PLICache(instance, max_partitions=2)
        for mask in (0b11, 0b110, 0b1100, 0b11000, 0b110000):
            cache.get(mask)
        # every indexed mask must still be cached and vice versa
        indexed = {
            mask
            for bucket in cache._by_popcount.values()
            for mask in bucket
        }
        cached = {mask for mask in cache._cache if mask != 0}
        assert indexed == cached

    def test_discovery_correct_with_tiny_cache(self):
        from repro.discovery.bruteforce import BruteForceFD
        from repro.discovery.hyfd import HyFD
        from tests.helpers import canon_fds

        instance = random_instance(9, 5, 22, domain_size=2, null_rate=0.2)
        expected = canon_fds(BruteForceFD().discover(instance))
        algo = HyFD(max_cached_partitions=2)
        assert canon_fds(algo.discover(instance)) == expected
        assert algo.last_cache_stats is not None
        assert algo.last_cache_stats.evictions > 0


class TestNullSemanticsThroughStack:
    """null_equals_null=False exercised end to end on hostile columns."""

    def _instance_with(self, columns):
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        names = tuple(f"c{i}" for i in range(len(columns)))
        return RelationInstance(Relation("nulls", names), columns)

    def test_all_null_column_probes_and_partitions(self):
        instance = self._instance_with(
            [[None, None, None], ["x", "x", "y"]]
        )
        cache = PLICache(instance, null_equals_null=False)
        assert len(set(cache.probe(0))) == 3
        assert cache.get(0b01).is_unique
        assert signature(cache.get(0b10)) == {frozenset({0, 1})}
        assert cache.get(0b11).is_unique

    def test_all_null_column_agree_sets(self):
        instance = self._instance_with([[None, None], [None, "v"]])
        eq_cache = PLICache(instance, null_equals_null=True)
        ne_cache = PLICache(instance, null_equals_null=False)
        assert eq_cache.agree_set(0, 1) == 0b01
        assert ne_cache.agree_set(0, 1) == 0

    def test_single_non_null_value_partitions(self):
        instance = self._instance_with([[None, "only", None, "only"]])
        eq_cache = PLICache(instance, null_equals_null=True)
        assert signature(eq_cache.get(0b1)) == {
            frozenset({1, 3}),
            frozenset({0, 2}),
        }
        ne_cache = PLICache(instance, null_equals_null=False)
        assert signature(ne_cache.get(0b1)) == {frozenset({1, 3})}

    def test_hyfd_on_all_null_column(self):
        from repro.discovery.bruteforce import BruteForceFD
        from repro.discovery.hyfd import HyFD
        from tests.helpers import canon_fds

        instance = self._instance_with(
            [[None] * 6, ["a", "a", "b", "b", "c", "c"], [None, "v"] * 3]
        )
        for nen in (True, False):
            expected = canon_fds(
                BruteForceFD(null_equals_null=nen).discover(instance)
            )
            got = canon_fds(HyFD(null_equals_null=nen).discover(instance))
            assert got == expected
