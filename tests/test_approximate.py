"""Tests for approximate FDs (g3 error) and exception reporting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.extensions.approximate import (
    discover_afds,
    g3_error,
    violating_rows,
)
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from tests.helpers import canon_fds


def postcode_with_exception():
    """Postcode -> City holds except for one shared-postcode exception."""
    relation = Relation("addr", ("Postcode", "City"))
    rows = [
        ("14482", "Potsdam"),
        ("14482", "Potsdam"),
        ("14482", "Potsdam"),
        ("60329", "Frankfurt"),
        ("60329", "Frankfurt"),
        ("60329", "Offenbach"),  # the exception
    ]
    return RelationInstance.from_rows(relation, rows)


class TestG3Error:
    def test_exact_fd_has_zero_error(self):
        instance = postcode_with_exception()
        # City -> City is trivial; use a constant column instead
        assert g3_error(instance, 0b01, 0) == 0.0  # Postcode -> Postcode? no:
        # lhs={Postcode}, rhs_attr=0 is Postcode itself: trivially 0.

    def test_exception_counted(self):
        instance = postcode_with_exception()
        # Postcode -> City: one of six rows must go
        assert g3_error(instance, 0b01, 1) == pytest.approx(1 / 6)

    def test_empty_relation(self):
        instance = RelationInstance(Relation("t", ("a", "b")), [[], []])
        assert g3_error(instance, 0b01, 1) == 0.0

    def test_error_decreases_with_larger_lhs(self):
        instance = random_instance(7, 4, 30, domain_size=2)
        for rhs_attr in range(4):
            small = g3_error(instance, 0b0001 & ~(1 << rhs_attr), rhs_attr)
            large = g3_error(instance, 0b0111 & ~(1 << rhs_attr), rhs_attr)
            assert large <= small

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=20)
    def test_zero_error_iff_exact_fd(self, seed, cols, rows):
        from tests.helpers import fd_holds

        instance = random_instance(seed, cols, rows, domain_size=2)
        for lhs in range(1 << cols):
            for rhs_attr in range(cols):
                if lhs & (1 << rhs_attr):
                    continue
                exact = fd_holds(instance, lhs, 1 << rhs_attr)
                assert (g3_error(instance, lhs, rhs_attr) == 0.0) == exact


class TestDiscoverAfds:
    def test_zero_threshold_matches_exact_discovery(self):
        instance = random_instance(11, 4, 15, domain_size=2)
        afds = discover_afds(instance, max_error=0.0)
        got = {(afd.lhs, afd.rhs_attr) for afd in afds}
        assert got == canon_fds(BruteForceFD().discover(instance))

    def test_finds_postcode_city_with_tolerance(self):
        instance = postcode_with_exception()
        afds = discover_afds(instance, max_error=0.2)
        assert any(afd.lhs == 0b01 and afd.rhs_attr == 1 for afd in afds)

    def test_threshold_validation(self):
        instance = postcode_with_exception()
        with pytest.raises(ValueError):
            discover_afds(instance, max_error=1.0)
        with pytest.raises(ValueError):
            discover_afds(instance, max_error=-0.1)

    def test_results_are_minimal(self):
        instance = random_instance(3, 4, 25, domain_size=2)
        afds = discover_afds(instance, max_error=0.1)
        by_rhs: dict[int, list[int]] = {}
        for afd in afds:
            by_rhs.setdefault(afd.rhs_attr, []).append(afd.lhs)
        for lhss in by_rhs.values():
            for a in lhss:
                for b in lhss:
                    assert a == b or (a & ~b and b & ~a)

    def test_all_results_within_threshold(self):
        instance = random_instance(9, 4, 25, domain_size=2)
        for afd in discover_afds(instance, max_error=0.15):
            assert afd.error <= 0.15

    def test_max_lhs_size(self):
        instance = random_instance(5, 5, 20, domain_size=2)
        for afd in discover_afds(instance, max_error=0.1, max_lhs_size=2):
            assert afd.lhs.bit_count() <= 2

    def test_to_str(self):
        instance = postcode_with_exception()
        afds = discover_afds(instance, max_error=0.2)
        rendered = [afd.to_str(instance.columns) for afd in afds]
        assert any("Postcode -> City" in line for line in rendered)


class TestViolatingRows:
    def test_exception_row_identified(self):
        instance = postcode_with_exception()
        assert violating_rows(instance, 0b01, 1) == [5]

    def test_removal_makes_fd_exact(self):
        from tests.helpers import fd_holds

        instance = random_instance(13, 3, 30, domain_size=2)
        for rhs_attr in range(3):
            lhs = 0b111 & ~(1 << rhs_attr) & 0b001
            if lhs == 0:
                continue
            exceptions = set(violating_rows(instance, lhs, rhs_attr))
            kept = [
                row
                for row in range(instance.num_rows)
                if row not in exceptions
            ]
            cleaned = RelationInstance.from_rows(
                instance.relation, [instance.row(i) for i in kept]
            )
            assert fd_holds(cleaned, lhs, 1 << rhs_attr)

    def test_count_matches_g3(self):
        instance = random_instance(17, 3, 40, domain_size=2)
        for rhs_attr in range(3):
            for lhs in (0b001, 0b010, 0b011):
                lhs &= ~(1 << rhs_attr)
                if not lhs:
                    continue
                expected = g3_error(instance, lhs, rhs_attr) * instance.num_rows
                assert len(violating_rows(instance, lhs, rhs_attr)) == round(
                    expected
                )
