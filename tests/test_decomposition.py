"""Tests for schema decomposition and FD projection (paper §3.6, Lemma 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import optimized_closure
from repro.core.decomposition import decompose, project_fds
from repro.core.key_derivation import derive_keys
from repro.core.violations import find_violating_fds
from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.model.fd import FD, FDSet
from repro.model.schema import ForeignKey
from tests.helpers import canon_fds


class TestBasics:
    def test_paper_example_split(self, address):
        extended = optimized_closure(BruteForceFD().discover(address))
        postcode = address.relation.mask_of(["Postcode"])
        city_mayor = address.relation.mask_of(["City", "Mayor"])
        outcome = decompose(address, extended, FD(postcode, city_mayor), "r2")
        assert outcome.r1.columns == ("First", "Last", "Postcode")
        assert outcome.r2.columns == ("Postcode", "City", "Mayor")
        assert outcome.r2.relation.primary_key == ("Postcode",)
        assert outcome.r1.relation.foreign_keys == [
            ForeignKey(("Postcode",), "r2", ("Postcode",))
        ]
        assert outcome.r2.num_rows == 3  # deduplicated
        assert outcome.r1.num_rows == 6

    def test_empty_lhs_rejected(self, address):
        extended = optimized_closure(BruteForceFD().discover(address))
        with pytest.raises(ValueError, match="empty LHS"):
            decompose(address, extended, FD(0, 0b1), "r2")

    def test_out_of_relation_fd_rejected(self, address):
        extended = FDSet(address.arity)
        with pytest.raises(ValueError, match="outside the relation"):
            decompose(address, extended, FD(1 << 10, 0b1), "r2")

    def test_parent_pk_and_fks_distributed(self, address):
        address.relation.primary_key = ("First", "Last")
        address.relation.foreign_keys.append(
            ForeignKey(("City",), "cities", ("name",))
        )
        extended = optimized_closure(BruteForceFD().discover(address))
        postcode = address.relation.mask_of(["Postcode"])
        city_mayor = address.relation.mask_of(["City", "Mayor"])
        outcome = decompose(address, extended, FD(postcode, city_mayor), "r2")
        assert outcome.r1.relation.primary_key == ("First", "Last")
        # the city FK overlaps the RHS and fits in R2 -> moves there
        assert any(
            fk.ref_relation == "cities"
            for fk in outcome.r2.relation.foreign_keys
        )
        assert all(
            fk.ref_relation != "cities"
            for fk in outcome.r1.relation.foreign_keys
        )


class TestProjectFds:
    def test_projection_renumbers(self):
        # attributes 0,2,3 of a 4-attr relation; FD {2} -> {3}
        fds = FDSet(4, [FD(0b0100, 0b1000)])
        projected = project_fds(fds, 0b1101, 4)
        # attr 2 -> position 1, attr 3 -> position 2
        assert dict(projected.items()) == {0b010: 0b100}

    def test_lhs_outside_part_dropped(self):
        fds = FDSet(3, [FD(0b010, 0b100)])
        projected = project_fds(fds, 0b101, 3)
        assert len(projected) == 0

    def test_rhs_clipped_to_part(self):
        fds = FDSet(3, [FD(0b001, 0b110)])
        projected = project_fds(fds, 0b011, 3)
        assert dict(projected.items()) == {0b01: 0b10}


class TestLemma3:
    """Projected FDs are exactly the valid FDs of each part."""

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=20)
    def test_parts_fds_match_rediscovery(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        extended = optimized_closure(BruteForceFD().discover(instance))
        keys = derive_keys(extended, instance.full_mask())
        violating = find_violating_fds(extended, keys)
        if not violating:
            return
        outcome = decompose(instance, extended, violating[0], "r2")
        for part, part_fds in (
            (outcome.r1, outcome.r1_fds),
            (outcome.r2, outcome.r2_fds),
        ):
            rediscovered = optimized_closure(BruteForceFD().discover(part))
            # every projected (extended) FD must be valid in the part
            got = canon_fds(part_fds)
            truth = canon_fds(rediscovered)
            # projected LHSs may be non-minimal within the part; compare
            # by closure: each projected FD's closure must match the
            # rediscovered closure of its LHS.
            for lhs, rhs in part_fds.items():
                from tests.helpers import semantic_closure_of_set

                assert lhs | rhs == semantic_closure_of_set(part, lhs)
            # and every minimal FD of the part must be present
            for lhs, attr in truth:
                assert (lhs, attr) in got

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=20)
    def test_losslessness(self, seed, cols, rows):
        """R1 ⋈ R2 on the LHS reproduces R exactly (as a multiset)."""
        instance = random_instance(seed, cols, rows, domain_size=2)
        extended = optimized_closure(BruteForceFD().discover(instance))
        keys = derive_keys(extended, instance.full_mask())
        violating = find_violating_fds(extended, keys)
        if not violating:
            return
        fd = violating[0]
        outcome = decompose(instance, extended, fd, "r2")
        lhs_names = instance.relation.names_of(fd.lhs)
        r2_lookup = {}
        for row_index in range(outcome.r2.num_rows):
            key = tuple(
                outcome.r2.column(name)[row_index] for name in lhs_names
            )
            r2_lookup[key] = outcome.r2.row(row_index)
        rebuilt = []
        r2_positions = {c: i for i, c in enumerate(outcome.r2.columns)}
        r1_positions = {c: i for i, c in enumerate(outcome.r1.columns)}
        for row_index in range(outcome.r1.num_rows):
            key = tuple(
                outcome.r1.column(name)[row_index] for name in lhs_names
            )
            match = r2_lookup[key]
            r1_row = outcome.r1.row(row_index)
            rebuilt.append(
                tuple(
                    r1_row[r1_positions[c]]
                    if c in r1_positions
                    else match[r2_positions[c]]
                    for c in instance.columns
                )
            )
        assert sorted(rebuilt) == sorted(instance.iter_rows())


class TestDecompositionEdgeCases:
    """Satellite coverage: the degenerate shapes a decomposition can take."""

    def test_single_attribute_lhs_violation(self):
        """A violating FD with |LHS| = 1 — the narrowest possible split."""
        from repro.core.normalize import normalize
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        instance = RelationInstance.from_rows(
            Relation("orders", ("order_id", "customer", "customer_city")),
            [
                (1, "ada", "london"),
                (2, "ada", "london"),
                (3, "bob", "paris"),
                (4, "bob", "paris"),
                (5, "eve", "zurich"),
            ],
        )
        result = normalize(instance, algorithm="bruteforce")
        assert len(result.steps) == 1
        step = result.steps[0]
        assert step.lhs == ("customer",)
        r2 = result.instances[step.r2]
        assert r2.relation.primary_key == ("customer",)
        assert r2.num_rows == 3  # deduplicated customer -> city pairs
        rebuilt = result.reconstruct("orders")
        assert sorted(rebuilt.iter_rows()) == sorted(instance.iter_rows())

    def test_all_key_relation_left_untouched(self):
        """A relation whose every attribute set is unique (all-key) has no
        violating FDs: normalization must be the identity."""
        from repro.core.normalize import normalize
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        instance = RelationInstance.from_rows(
            Relation("allkey", ("a", "b", "c")),
            [(0, 1, 2), (1, 2, 0), (2, 0, 1)],
        )
        result = normalize(instance, algorithm="bruteforce")
        assert result.steps == []
        assert list(result.instances) == ["allkey"]
        out = result.instances["allkey"]
        assert list(out.iter_rows()) == list(instance.iter_rows())

    def test_cascading_splits_down_to_two_column_relations(self):
        """A functional chain c0 -> c1 -> c2 -> c3 must decompose all the
        way down to 2-column relations, losslessly."""
        from repro.core.normalize import normalize
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        rows = [(i, i // 2, i // 4, i // 8) for i in range(16)]
        instance = RelationInstance.from_rows(
            Relation("chain", ("c0", "c1", "c2", "c3")), rows
        )
        result = normalize(instance, algorithm="bruteforce")
        assert len(result.steps) == 2
        assert sorted(part.arity for part in result.instances.values()) == [
            2,
            2,
            2,
        ]
        rebuilt = result.reconstruct("chain")
        assert sorted(rebuilt.iter_rows()) == sorted(rows)
        # every part must carry a primary key so the chain of FKs resolves
        for part in result.instances.values():
            assert part.relation.primary_key is not None

    def test_repeated_decomposition_conforms_and_is_audited_clean(self):
        from repro.verification.metamorphic import check_pipeline_properties
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        rows = [(i, i // 2, i // 4, i // 8) for i in range(16)]
        instance = RelationInstance.from_rows(
            Relation("chain", ("c0", "c1", "c2", "c3")), rows
        )
        violations, _ = check_pipeline_properties(instance, target="bcnf")
        assert not violations, [v.describe() for v in violations]
