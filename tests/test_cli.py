"""Tests for the console front-end."""

import pytest

from repro.cli import build_parser, main
from repro.io.csv_io import write_csv
from repro.io.datasets import address_example


@pytest.fixture()
def address_csv(tmp_path):
    path = tmp_path / "address.csv"
    write_csv(address_example(), path)
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["data.csv"])
        assert args.algorithm == "hyfd"
        assert args.target == "bcnf"
        assert args.closure == "optimized"
        assert not args.interactive

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["data.csv", "--algorithm", "magic"])

    def test_multiple_files(self):
        args = build_parser().parse_args(["a.csv", "b.csv"])
        assert args.files == ["a.csv", "b.csv"]


class TestMain:
    def test_normalizes_and_prints_schema(self, address_csv, capsys):
        exit_code = main([str(address_csv), "--algorithm", "bruteforce"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Postcode" in out
        assert "minimal FDs" in out
        assert "values: 30 -> 27" in out

    def test_ddl_output(self, address_csv, tmp_path, capsys):
        ddl_path = tmp_path / "schema.sql"
        main(
            [
                str(address_csv),
                "--algorithm",
                "bruteforce",
                "--ddl",
                str(ddl_path),
            ]
        )
        ddl = ddl_path.read_text(encoding="utf-8")
        assert "CREATE TABLE" in ddl
        assert "PRIMARY KEY" in ddl

    def test_out_dir_writes_relations(self, address_csv, tmp_path, capsys):
        out_dir = tmp_path / "normalized"
        main(
            [
                str(address_csv),
                "--algorithm",
                "bruteforce",
                "--out-dir",
                str(out_dir),
            ]
        )
        written = sorted(p.name for p in out_dir.glob("*.csv"))
        assert len(written) == 2

    def test_3nf_target(self, address_csv, capsys):
        assert main([str(address_csv), "--algorithm", "bruteforce", "--target", "3nf"]) == 0

    def test_tane_and_closure_choice(self, address_csv, capsys):
        exit_code = main(
            [
                str(address_csv),
                "--algorithm",
                "tane",
                "--closure",
                "improved",
            ]
        )
        assert exit_code == 0

    def test_interactive_session(self, address_csv, capsys, monkeypatch):
        answers = iter(["0", "", ""])  # pick FD 0, default keys
        monkeypatch.setattr("builtins.input", lambda prompt="": next(answers))
        exit_code = main(
            [str(address_csv), "--algorithm", "bruteforce", "--interactive"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Ranked decomposition candidates" in out

    def test_interactive_stop(self, address_csv, capsys, monkeypatch):
        answers = iter(["s", ""])  # stop the relation, pick default key
        monkeypatch.setattr("builtins.input", lambda prompt="": next(answers))
        exit_code = main(
            [str(address_csv), "--algorithm", "bruteforce", "--interactive"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "values: 30 -> 30" in out


class TestExtendedOptions:
    def test_profile_mode(self, address_csv, capsys):
        assert main([str(address_csv), "--profile", "--algorithm", "bruteforce"]) == 0
        out = capsys.readouterr().out
        assert "minimal FDs: 12" in out

    def test_tree_output(self, address_csv, capsys):
        main([str(address_csv), "--algorithm", "bruteforce", "--tree"])
        out = capsys.readouterr().out
        assert "Foreign-key tree:" in out
        assert "`-- " in out

    def test_dot_output(self, address_csv, tmp_path, capsys):
        dot_path = tmp_path / "schema.dot"
        main([str(address_csv), "--algorithm", "bruteforce", "--dot", str(dot_path)])
        assert dot_path.read_text(encoding="utf-8").startswith("digraph")

    def test_json_export(self, address_csv, tmp_path, capsys):
        import json

        json_path = tmp_path / "result.json"
        main([str(address_csv), "--algorithm", "bruteforce", "--json", str(json_path)])
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["values_after"] == 27

    def test_save_and_load_fds(self, address_csv, tmp_path, capsys):
        fds_path = tmp_path / "fds.json"
        main(
            [
                str(address_csv),
                "--algorithm",
                "bruteforce",
                "--save-fds",
                str(fds_path),
            ]
        )
        assert fds_path.exists()
        capsys.readouterr()
        exit_code = main([str(address_csv), "--load-fds", str(fds_path)])
        assert exit_code == 0
        assert "values: 30 -> 27" in capsys.readouterr().out

    def test_load_fds_column_mismatch(self, tmp_path, capsys):
        import pytest as _pytest

        from repro.io.csv_io import write_csv
        from repro.io.serialization import save_fdset
        from repro.discovery.bruteforce import BruteForceFD
        from repro.io.datasets import planets_example

        planets = planets_example()
        fds_path = tmp_path / "planet_fds.json"
        save_fdset(BruteForceFD().discover(planets), planets.columns, fds_path)
        other_csv = tmp_path / "address.csv"
        write_csv(address_example(), other_csv)
        with _pytest.raises(SystemExit, match="different columns"):
            main([str(other_csv), "--load-fds", str(fds_path)])

    def test_4nf_target(self, tmp_path, capsys):
        from repro.io.csv_io import write_csv
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        rows = []
        books = {"Curie": ["B1", "B2"], "Noether": ["B1", "B3"]}
        students = {"Curie": ["s1", "s2"], "Noether": ["s2", "s3"]}
        for teacher in books:
            for book in books[teacher]:
                for student in students[teacher]:
                    rows.append((teacher, book, student))
        course = RelationInstance.from_rows(
            Relation("course", ("teacher", "book", "student")), rows
        )
        path = tmp_path / "course.csv"
        write_csv(course, path)
        assert main([str(path), "--target", "4nf", "--algorithm", "bruteforce"]) == 0
        out = capsys.readouterr().out
        assert "->>" in out


class TestCheckMode:
    def test_check_reports_violation(self, address_csv, capsys):
        exit_code = main([str(address_csv), "--check", "--algorithm", "bruteforce"])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "VIOLATES BCNF" in out

    def test_check_passes_on_conform_relation(self, tmp_path, capsys):
        from repro.core.normalize import normalize
        from repro.io.csv_io import write_csv

        result = normalize(address_example(), algorithm="bruteforce")
        conform = next(iter(result.instances.values()))
        path = tmp_path / "conform.csv"
        write_csv(conform, path)
        exit_code = main([str(path), "--check", "--algorithm", "bruteforce"])
        assert exit_code == 0
        assert "conforms to BCNF" in capsys.readouterr().out


class TestVerifySubcommand:
    def test_verify_passes_on_clean_seeds(self, capsys):
        exit_code = main(["verify", "--seeds", "3", "--quiet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "all passed" in out

    def test_verify_reports_progress_and_counts(self, capsys):
        exit_code = main(["verify", "--seeds", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "verified 2 seeds" in out

    def test_verify_repro_out_untouched_when_green(self, tmp_path, capsys):
        target = tmp_path / "repros.py"
        exit_code = main(
            ["verify", "--seeds", "2", "--quiet", "--repro-out", str(target)]
        )
        assert exit_code == 0
        assert not target.exists()

    def test_python_dash_m_entry(self):
        import subprocess
        import sys as _sys

        completed = subprocess.run(
            [_sys.executable, "-m", "repro", "verify", "--seeds", "1", "--quiet"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert completed.returncode == 0, completed.stderr
        assert "all passed" in completed.stdout
