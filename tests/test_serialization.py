"""Tests for the JSON serialization layer."""

import json

import pytest

from repro.core.normalize import normalize
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.precomputed import PrecomputedFDs
from repro.io.serialization import (
    fdset_from_json,
    fdset_to_json,
    load_fdset,
    result_to_json,
    save_fdset,
    schema_from_json,
    schema_to_json,
)
from repro.model.fd import FD, FDSet
from repro.model.schema import ForeignKey, Relation, Schema


class TestFdsetRoundTrip:
    def test_roundtrip(self, address):
        fds = BruteForceFD().discover(address)
        payload = fdset_to_json(fds, address.columns)
        restored, columns = fdset_from_json(payload)
        assert columns == address.columns
        assert dict(restored.items()) == dict(fds.items())

    def test_json_serializable(self, address):
        fds = BruteForceFD().discover(address)
        text = json.dumps(fdset_to_json(fds, address.columns))
        restored, _ = fdset_from_json(json.loads(text))
        assert dict(restored.items()) == dict(fds.items())

    def test_file_roundtrip(self, address, tmp_path):
        fds = BruteForceFD().discover(address)
        path = tmp_path / "fds.json"
        save_fdset(fds, address.columns, path)
        restored, columns = load_fdset(path)
        assert columns == address.columns
        assert dict(restored.items()) == dict(fds.items())

    def test_column_count_mismatch_rejected(self):
        fds = FDSet(3, [FD(0b1, 0b10)])
        with pytest.raises(ValueError, match="column names"):
            fdset_to_json(fds, ("a", "b"))

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="FD-set"):
            fdset_from_json({"format": "something-else"})

    def test_loaded_fds_drive_the_pipeline(self, address, tmp_path):
        """Profile once, save, reload, normalize — the paper's workflow."""
        fds = BruteForceFD().discover(address)
        path = tmp_path / "fds.json"
        save_fdset(fds, address.columns, path)
        restored, _ = load_fdset(path)
        result = normalize(
            address, algorithm=PrecomputedFDs({"address": restored})
        )
        assert result.total_values == 27


class TestSchemaRoundTrip:
    def make_schema(self):
        return Schema(
            [
                Relation("dim", ("id", "name"), primary_key=("id",)),
                Relation(
                    "fact",
                    ("fid", "id"),
                    primary_key=("fid",),
                    foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
                ),
                Relation("keyless", ("x",)),
            ]
        )

    def test_roundtrip(self):
        schema = self.make_schema()
        restored = schema_from_json(schema_to_json(schema))
        assert restored.to_str() == schema.to_str()

    def test_none_primary_key_preserved(self):
        restored = schema_from_json(schema_to_json(self.make_schema()))
        assert restored["keyless"].primary_key is None

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            schema_from_json({"format": "nope"})


class TestResultExport:
    def test_export_fields(self, address):
        result = normalize(address, algorithm="bruteforce")
        payload = result_to_json(result)
        assert payload["values_before"] == 30
        assert payload["values_after"] == 27
        assert len(payload["steps"]) == 1
        assert payload["steps"][0]["lhs"] == ["Postcode"]
        assert payload["stats"][0]["num_fds"] == 12
        assert "fd_discovery" in payload["timings"]

    def test_export_is_json_serializable(self, address):
        result = normalize(address, algorithm="bruteforce")
        text = json.dumps(result_to_json(result))
        assert "Postcode" in text

    def test_schema_restores_from_export(self, address):
        result = normalize(address, algorithm="bruteforce")
        payload = result_to_json(result)
        schema = schema_from_json(payload["schema"])
        assert set(schema.relation_names) == set(result.instances)
