"""Metamorphic property checks: closure, pipeline, dependency accounting."""

from repro.core.closure import optimized_closure
from repro.datagen.random_tables import random_instance
from repro.discovery.base import discover_fds
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.verification.metamorphic import (
    check_closure_properties,
    check_pipeline_properties,
    lost_dependencies,
)


class TestClosureProperties:
    def test_discovered_sets_pass(self, address):
        fds = discover_fds(address, "bruteforce")
        assert not check_closure_properties(fds)

    def test_random_instances_pass(self):
        for seed in range(8):
            instance = random_instance(seed, 5, 18, domain_size=3)
            fds = discover_fds(instance, "bruteforce")
            assert not check_closure_properties(fds)

    def test_incomplete_input_is_flagged(self):
        """Lemma 1's precondition is necessary: on a *non-complete* FD set
        the optimized closure legitimately diverges from the naive one,
        and the property check reports exactly that."""
        fds = FDSet(3)
        fds.add_masks(0b001, 0b010)  # A -> B
        fds.add_masks(0b010, 0b100)  # B -> C  (A -> C only transitively)
        violations = check_closure_properties(fds)
        assert any(v.prop == "closure-agreement" for v in violations)

    def test_idempotence_on_closed_set(self, address):
        closed = optimized_closure(discover_fds(address, "bruteforce"))
        violations = [
            v
            for v in check_closure_properties(closed)
            if v.prop == "closure-idempotence"
        ]
        assert not violations


class TestPipelineProperties:
    def test_address_bcnf_clean(self, address):
        violations, result = check_pipeline_properties(address, target="bcnf")
        assert not violations
        assert len(result.instances) == 2  # the paper's split

    def test_random_instances_clean_both_targets(self):
        for seed in range(5):
            instance = random_instance(seed, 4, 14, domain_size=2)
            for target in ("bcnf", "3nf"):
                violations, _ = check_pipeline_properties(instance, target=target)
                assert not violations, [v.describe() for v in violations]

    def test_late_primary_key_audit_context(self):
        """Regression for the artifact the harness itself discovered: a
        primary key assigned in step 7 weakens 3NF mutual-exclusion
        vetoes, so compliance must be audited in the loop's own
        constraint context (found on fuzz seed 0)."""
        instance = RelationInstance(
            Relation("random", ("c0", "c1", "c2", "c3", "c4")),
            [
                [1, 1, 1, 0, 1, 0, 1],
                [0, 0, 0, 3, 0, 0, 1],
                [0, 1, 0, 0, 0, 1, 1],
                [1, 1, 1, 0, 0, 0, 1],
                [0, 2, 1, 3, 3, 2, 0],
            ],
        )
        violations, _ = check_pipeline_properties(instance, target="3nf")
        assert not violations, [v.describe() for v in violations]

    def test_lossless_join_on_planted_instances(self):
        from repro.verification.planted import plant_instance

        for seed in range(5):
            planted = plant_instance(seed, num_columns=5, num_rows=22)
            violations, _ = check_pipeline_properties(
                planted.instance, target="bcnf"
            )
            lossless = [v for v in violations if v.prop == "lossless-join"]
            assert not lossless


class TestDependencyPreservation:
    def test_paper_example_preserves_all(self, address):
        _, result = check_pipeline_properties(address, target="bcnf")
        assert lost_dependencies(address, result) == []

    def test_classic_zip_example_loses_a_dependency(self):
        """city,street -> zip; zip -> city: BCNF cannot preserve both."""
        instance = RelationInstance.from_rows(
            Relation("addr", ("city", "street", "zip")),
            [
                ("springfield", "main", "11"),
                ("springfield", "oak", "12"),
                ("shelbyville", "main", "21"),
                ("shelbyville", "oak", "22"),
                ("springfield", "elm", "11"),
            ],
        )
        violations, result = check_pipeline_properties(instance, target="bcnf")
        # the decomposition itself must stay sound ...
        assert not [v for v in violations if v.prop == "lossless-join"]
        if result.steps:  # ... but it may legitimately lose an FD
            lost = lost_dependencies(instance, result)
            rendered = [fd.to_str(instance.columns) for fd in lost]
            assert any("zip" in fd for fd in rendered) or lost == []
