"""Tests for planted-FD instance generation (the harness's ground truth)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.base import discover_fds
from repro.model.attributes import iter_bits
from repro.verification.differential import fd_holds_in, semantic_fd_errors
from repro.verification.planted import plant_instance

plant_params = st.tuples(
    st.integers(min_value=0, max_value=1_000_000),  # seed
    st.integers(min_value=2, max_value=7),  # columns
    st.integers(min_value=0, max_value=40),  # rows
    st.sampled_from([0.0, 0.0, 0.2]),  # null rate
)


class TestPlantedInvariants:
    @given(params=plant_params)
    @settings(max_examples=40)
    def test_planted_fds_hold_under_both_semantics(self, params):
        seed, cols, rows, null_rate = params
        planted = plant_instance(
            seed, num_columns=cols, num_rows=rows, null_rate=null_rate
        )
        for fd in planted.planted_fds():
            for nen in (True, False):
                assert fd_holds_in(planted.instance, fd.lhs, fd.rhs, nen), (
                    f"planted {fd} must hold (null_equals_null={nen})"
                )

    @given(params=plant_params)
    @settings(max_examples=40)
    def test_planted_key_is_unique(self, params):
        seed, cols, rows, null_rate = params
        planted = plant_instance(
            seed, num_columns=cols, num_rows=rows, null_rate=null_rate
        )
        if not planted.key_mask:
            return
        instance = planted.instance
        assert instance.distinct_count(planted.key_mask) == instance.num_rows

    @given(params=plant_params)
    @settings(max_examples=25)
    def test_derived_and_key_columns_never_null(self, params):
        seed, cols, rows, null_rate = params
        planted = plant_instance(
            seed, num_columns=cols, num_rows=rows, null_rate=null_rate
        )
        constrained = planted.key_mask
        for lhs, rhs in planted.cover.items():
            constrained |= rhs
        for attr in iter_bits(constrained):
            column = planted.instance.columns_data[attr]
            assert all(value is not None for value in column)

    def test_deterministic(self):
        first = plant_instance(11, num_columns=5, num_rows=25, null_rate=0.1)
        second = plant_instance(11, num_columns=5, num_rows=25, null_rate=0.1)
        assert list(first.instance.iter_rows()) == list(
            second.instance.iter_rows()
        )
        assert set(first.cover.items()) == set(second.cover.items())
        assert first.key_mask == second.key_mask

    def test_discovery_covers_planted_ground_truth(self):
        for seed in range(12):
            planted = plant_instance(seed, num_columns=5, num_rows=24)
            fds = discover_fds(planted.instance, "bruteforce")
            errors = semantic_fd_errors(
                planted.instance, fds, planted_cover=planted.cover
            )
            assert not errors, errors.describe(planted.instance.columns)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="one column"):
            plant_instance(0, num_columns=0)
        with pytest.raises(ValueError, match="non-negative"):
            plant_instance(0, num_rows=-1)
        with pytest.raises(ValueError, match="max_lhs_size"):
            plant_instance(0, max_lhs_size=0)

    def test_zero_rows_and_single_column(self):
        empty = plant_instance(0, num_columns=3, num_rows=0)
        assert empty.instance.num_rows == 0
        single = plant_instance(0, num_columns=1, num_rows=5)
        assert single.instance.arity == 1
        assert not list(single.cover.items())
