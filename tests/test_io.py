"""Tests for CSV I/O, bundled datasets, and DDL export."""

import pytest

from repro.io.csv_io import read_csv, write_csv
from repro.io.datasets import (
    address_example,
    denormalized_university,
    planets_example,
)
from repro.io.ddl import schema_to_ddl
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey, Relation, Schema


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        instance = address_example()
        path = tmp_path / "address.csv"
        write_csv(instance, path)
        back = read_csv(path)
        assert back.columns == instance.columns
        assert list(back.iter_rows()) == list(instance.iter_rows())

    def test_nulls_roundtrip_as_empty(self, tmp_path):
        instance = RelationInstance.from_rows(
            Relation("t", ("a", "b")), [("x", None), (None, "y")]
        )
        path = tmp_path / "t.csv"
        write_csv(instance, path)
        back = read_csv(path)
        assert list(back.iter_rows()) == [("x", None), (None, "y")]

    def test_empty_not_null_mode(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\nx,\n", encoding="utf-8")
        back = read_csv(path, empty_as_null=False)
        assert list(back.iter_rows()) == [("x", "")]

    def test_no_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,2\n3,4\n", encoding="utf-8")
        back = read_csv(path, has_header=False)
        assert back.columns == ("col_0", "col_1")
        assert back.num_rows == 2

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mydata.csv"
        path.write_text("a\n1\n", encoding="utf-8")
        assert read_csv(path).name == "mydata"

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a;b\n1;2\n", encoding="utf-8")
        back = read_csv(path, delimiter=";")
        assert back.columns == ("a", "b")

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)


class TestCsvHardening:
    """Hostile-input behavior of read_csv: structured errors + repair
    policies (see docs/ROBUSTNESS.md)."""

    def test_bom_is_always_stripped(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(b"\xef\xbb\xbfa,b\n1,2\n")
        back = read_csv(path)
        assert back.columns == ("a", "b")

    def test_ragged_error_carries_context(self, tmp_path):
        from repro.runtime.errors import InputError

        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3\n", encoding="utf-8")
        with pytest.raises(InputError) as exc_info:
            read_csv(path)
        context = exc_info.value.context
        assert context["row"] == 3
        assert context["file"] == str(path)

    def test_ragged_pad_policy(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n1,2,3\n", encoding="utf-8")
        back = read_csv(path, on_error="pad")
        assert list(back.iter_rows()) == [("1", None), ("1", "2")]

    def test_ragged_skip_policy(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n5,6\n", encoding="utf-8")
        back = read_csv(path, on_error="skip")
        assert list(back.iter_rows()) == [("5", "6")]

    def test_undecodable_bytes_strict(self, tmp_path):
        from repro.runtime.errors import InputError

        path = tmp_path / "latin1.csv"
        path.write_bytes(b"a,b\nx,caf\xe9\n")  # latin-1 é: invalid UTF-8
        with pytest.raises(InputError, match="not valid UTF-8"):
            read_csv(path)

    def test_undecodable_bytes_replaced_under_pad(self, tmp_path):
        path = tmp_path / "latin1.csv"
        path.write_bytes(b"a,b\nx,caf\xe9\n")
        back = read_csv(path, on_error="pad")
        assert list(back.iter_rows()) == [("x", "caf�")]

    def test_missing_file(self, tmp_path):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError, match="not found"):
            read_csv(tmp_path / "absent.csv")

    def test_header_only_file_is_valid(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n", encoding="utf-8")
        back = read_csv(path)
        assert back.columns == ("a", "b")
        assert back.num_rows == 0

    def test_empty_header_rejected(self, tmp_path):
        from repro.runtime.errors import InputError

        path = tmp_path / "t.csv"
        path.write_text("\n1,2\n", encoding="utf-8")
        with pytest.raises(InputError, match="no columns"):
            read_csv(path)

    def test_unknown_policy_rejected(self, tmp_path):
        from repro.runtime.errors import InputError

        path = tmp_path / "t.csv"
        path.write_text("a\n1\n", encoding="utf-8")
        with pytest.raises(InputError, match="unknown on_error policy"):
            read_csv(path, on_error="mend")

    def test_errors_are_value_errors(self, tmp_path):
        # InputError subclasses ValueError for pre-taxonomy callers.
        with pytest.raises(ValueError):
            read_csv(tmp_path / "absent.csv")


class TestCsvInMemorySources:
    """read_csv over bytes / file-like sources (the server ingest path)."""

    def test_bytes_source(self):
        instance = read_csv(b"a,b\n1,2\n3,4\n", name="t")
        assert instance.name == "t"
        assert instance.columns == ("a", "b")
        assert list(instance.iter_rows()) == [("1", "2"), ("3", "4")]

    def test_bytes_default_name(self):
        assert read_csv(b"a\n1\n").name == "relation"

    def test_bytes_matches_file(self, tmp_path):
        text = "a,b,c\n1,2,\n4,,6\n"
        path = tmp_path / "t.csv"
        path.write_text(text, encoding="utf-8")
        from_path = read_csv(path)
        from_bytes = read_csv(text.encode("utf-8"), name="t")
        assert from_bytes.columns == from_path.columns
        assert list(from_bytes.iter_rows()) == list(from_path.iter_rows())

    def test_binary_stream_source(self):
        import io

        instance = read_csv(io.BytesIO(b"a,b\nx,y\n"), name="s")
        assert list(instance.iter_rows()) == [("x", "y")]

    def test_text_stream_source(self):
        import io

        instance = read_csv(io.StringIO("a,b\nx,y\n"), name="s")
        assert list(instance.iter_rows()) == [("x", "y")]

    def test_stream_name_used_for_relation(self, tmp_path):
        path = tmp_path / "emp.csv"
        path.write_text("a\n1\n", encoding="utf-8")
        with open(path, "rb") as handle:
            assert read_csv(handle).name == "emp"

    def test_bytes_bom_stripped(self):
        instance = read_csv(b"\xef\xbb\xbfa,b\n1,2\n")
        assert instance.columns == ("a", "b")

    def test_bytes_undecodable_strict(self):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError, match="not valid UTF-8"):
            read_csv(b"a,b\n\xff\xfe,2\n")

    def test_bytes_undecodable_pad(self):
        instance = read_csv(b"a,b\n\xff,2\n", on_error="pad")
        assert list(instance.iter_rows()) == [("�", "2")]

    def test_empty_bytes_rejected(self):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError, match="empty"):
            read_csv(b"")

    def test_unsupported_source_rejected(self):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError, match="unsupported CSV source"):
            read_csv(12345)


class TestDuplicateHeader:
    """Duplicate column names are an InputError, never silently renamed."""

    def test_duplicate_header_rejected(self, tmp_path):
        from repro.runtime.errors import InputError

        path = tmp_path / "t.csv"
        path.write_text("a,b,a\n1,2,3\n", encoding="utf-8")
        with pytest.raises(InputError, match="duplicate column names"):
            read_csv(path)

    def test_duplicate_header_carries_context(self):
        from repro.runtime.errors import InputError

        with pytest.raises(InputError) as info:
            read_csv(b"x,y,x,y,z\n1,2,3,4,5\n", name="t")
        assert info.value.context["row"] == 1
        assert info.value.context["duplicates"] == ["x", "y"]

    def test_duplicate_header_rejected_under_pad(self):
        # on_error policies repair *rows*; a broken header has no repair.
        from repro.runtime.errors import InputError

        with pytest.raises(InputError, match="duplicate column names"):
            read_csv(b"a,a\n1,2\n", on_error="pad")


class TestBundledDatasets:
    def test_address_shape(self):
        instance = address_example()
        assert instance.arity == 5
        assert instance.num_rows == 6

    def test_planets_fd(self):
        from tests.helpers import fd_holds

        planets = planets_example()
        atmosphere = planets.relation.mask_of(["Atmosphere"])
        rings = planets.relation.mask_of(["Rings"])
        assert fd_holds(planets, atmosphere, rings)

    def test_university_fds(self):
        from tests.helpers import fd_holds

        uni = denormalized_university()
        name = uni.relation.mask_of(["name"])
        dept_salary = uni.relation.mask_of(["department", "salary"])
        label = uni.relation.mask_of(["label"])
        room_date = uni.relation.mask_of(["room", "date"])
        assert fd_holds(uni, name, dept_salary)
        assert fd_holds(uni, label, room_date)


class TestDDL:
    def make_schema(self):
        target = Relation("dim", ("id", "name"), primary_key=("id",))
        fact = Relation(
            "fact",
            ("fid", "id", "value"),
            primary_key=("fid",),
            foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
        )
        return Schema([fact, target])

    def test_referenced_tables_emitted_first(self):
        ddl = schema_to_ddl(self.make_schema())
        assert ddl.index('CREATE TABLE "dim"') < ddl.index('CREATE TABLE "fact"')

    def test_constraints_present(self):
        ddl = schema_to_ddl(self.make_schema())
        assert 'PRIMARY KEY ("id")' in ddl
        assert 'FOREIGN KEY ("id") REFERENCES "dim" ("id")' in ddl

    def test_type_inference(self):
        schema = Schema([Relation("t", ("n", "s"))])
        instances = {
            "t": RelationInstance.from_rows(
                Relation("t", ("n", "s")), [(1, "x"), (2, "y")]
            )
        }
        ddl = schema_to_ddl(schema, instances)
        assert '"n" INTEGER' in ddl
        assert '"s" TEXT' in ddl

    def test_without_instances_text_type(self):
        ddl = schema_to_ddl(Schema([Relation("t", ("a",))]))
        assert '"a" TEXT' in ddl

    def test_pk_columns_not_null(self):
        ddl = schema_to_ddl(Schema([Relation("t", ("a", "b"), primary_key=("a",))]))
        assert '"a" TEXT NOT NULL' in ddl
        assert '"b" TEXT NOT NULL' not in ddl

    def test_cycle_does_not_hang(self):
        a = Relation(
            "a", ("x", "y"), foreign_keys=[ForeignKey(("y",), "b", ("y",))]
        )
        b = Relation(
            "b", ("y", "x"), foreign_keys=[ForeignKey(("x",), "a", ("x",))]
        )
        ddl = schema_to_ddl(Schema([a, b]))
        assert ddl.count("CREATE TABLE") == 2

    def test_identifier_quoting(self):
        ddl = schema_to_ddl(Schema([Relation('we"ird', ("a",))]))
        assert '"we""ird"' in ddl

    def test_executes_on_sqlite(self, tmp_path):
        import sqlite3

        ddl = schema_to_ddl(self.make_schema())
        conn = sqlite3.connect(":memory:")
        conn.executescript(ddl)
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert {"dim", "fact"} <= tables
