"""End-to-end integration: the full system wired together at tiny scale.

These tests run the complete reproduction path — generate → denormalize
→ discover → normalize → evaluate → audit → export — on miniature
versions of the paper's datasets.  The benchmark suite runs the same
pipelines at the (larger) reporting scale; these tests make the whole
chain part of every `pytest tests/` run.
"""

import sqlite3

import pytest

from repro.core.normalize import normalize
from repro.datagen.musicbrainz import (
    MUSICBRAINZ_GOLD,
    MusicBrainzScale,
    denormalized_musicbrainz,
)
from repro.datagen.tpch import TPCH_GOLD, TpchScale, denormalized_tpch
from repro.discovery.ind import verify_foreign_keys
from repro.evaluation.metrics import evaluate_schema_recovery
from repro.evaluation.snowflake import schema_tree
from repro.extensions.incremental import ConstraintMonitor
from repro.io.ddl import schema_to_ddl
from repro.io.serialization import result_to_json, schema_from_json

TINY_TPCH = TpchScale(
    regions=3,
    nations=5,
    suppliers=8,
    parts=12,
    partsupps=24,
    customers=8,
    orders=20,
    lineitems=60,
)

TINY_MB = MusicBrainzScale(
    areas=4,
    places=6,
    artists=10,
    artist_credits=8,
    artist_credit_names=14,
    labels=5,
    releases=10,
    release_labels=14,
    mediums=14,
    recordings=20,
    tracks=40,
    max_joined_rows=120,
)


@pytest.fixture(scope="module")
def tpch_result():
    universal = denormalized_tpch(TINY_TPCH)
    return universal, normalize(universal)


@pytest.fixture(scope="module")
def musicbrainz_result():
    universal = denormalized_musicbrainz(TINY_MB)
    return universal, normalize(universal)


class TestTpchEndToEnd:
    def test_recovery_quality(self, tpch_result):
        _, result = tpch_result
        report = evaluate_schema_recovery(result.schema, TPCH_GOLD)
        assert report.pair_precision > 0.8
        assert report.pair_recall > 0.8
        assert len(report.perfectly_recovered) >= 5

    def test_lossless(self, tpch_result):
        universal, result = tpch_result
        rebuilt = result.reconstruct(universal.name)
        assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())

    def test_all_foreign_keys_audit_clean(self, tpch_result):
        _, result = tpch_result
        audits = verify_foreign_keys(result.instances)
        assert audits
        broken = [a.to_str() for a in audits if not a.valid]
        assert broken == []

    def test_ddl_executes_and_loads_on_sqlite(self, tpch_result):
        _, result = tpch_result
        ddl = schema_to_ddl(result.schema, result.instances)
        conn = sqlite3.connect(":memory:")
        conn.executescript(ddl)
        # insert every relation's rows; FK constraints stay off by
        # default in sqlite, so this checks arity/typing only
        for name, instance in result.instances.items():
            placeholders = ",".join("?" * instance.arity)
            conn.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                list(instance.iter_rows()),
            )
        counted = {
            name: conn.execute(f'SELECT COUNT(*) FROM "{name}"').fetchone()[0]
            for name in result.instances
        }
        assert counted == {
            name: instance.num_rows
            for name, instance in result.instances.items()
        }

    def test_schema_json_roundtrip(self, tpch_result):
        _, result = tpch_result
        payload = result_to_json(result)
        schema = schema_from_json(payload["schema"])
        assert set(schema.relation_names) == set(result.instances)

    def test_tree_renders_every_relation(self, tpch_result):
        _, result = tpch_result
        tree = schema_tree(result.schema)
        for name in result.instances:
            assert f"{name}(" in tree

    def test_monitor_accepts_replayed_rows(self, tpch_result):
        universal, result = tpch_result
        monitor = ConstraintMonitor(result)
        # replaying an existing universal row must never violate
        assert monitor.route_universal_row(universal.name, universal.row(0)) == []


class TestMusicBrainzEndToEnd:
    def test_recovery_quality(self, musicbrainz_result):
        _, result = musicbrainz_result
        report = evaluate_schema_recovery(result.schema, MUSICBRAINZ_GOLD)
        assert report.pair_precision > 0.7
        assert report.pair_recall > 0.7
        assert len(report.perfectly_recovered) >= 5

    def test_lossless(self, musicbrainz_result):
        universal, result = musicbrainz_result
        rebuilt = result.reconstruct(universal.name)
        assert sorted(rebuilt.iter_rows()) == sorted(universal.iter_rows())

    def test_every_relation_bcnf(self, musicbrainz_result):
        from tests.test_normalize import assert_target_conform

        _, result = musicbrainz_result
        for instance in result.instances.values():
            assert_target_conform(instance)

    def test_foreign_keys_audit_clean(self, musicbrainz_result):
        _, result = musicbrainz_result
        broken = [
            a.to_str()
            for a in verify_foreign_keys(result.instances)
            if not a.valid
        ]
        assert broken == []
