"""Unit tests for the process-pool backend and shared-memory export.

Everything here exercises the machinery of ``repro.parallel`` in
isolation: worker resolution, the cost model, zero-copy export/attach
round trips, order-preserving dispatch, budget propagation into
workers, error surfacing, and the fork-hygiene resets.  The
byte-identity of whole algorithm runs lives in
``test_parallel_determinism.py``.
"""

import os

import pytest

import repro.parallel.pool as pool_mod
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.parallel import (
    MAX_WORKERS,
    PoolStats,
    RelationRun,
    WorkerError,
    attach_encoding,
    export_encoding,
    get_pool,
    resolve_workers,
    should_parallelize,
    shutdown_pool,
    split_ranges,
)
from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.governor import Budget, Governor, activate
from repro.structures import partitions as partitions_module
from repro.verification.planted import plant_instance


@pytest.fixture(autouse=True)
def _clean_pool():
    yield
    shutdown_pool()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(InputError):
            resolve_workers()

    def test_below_one_rejected(self):
        with pytest.raises(InputError):
            resolve_workers(0)

    def test_capped_at_max(self):
        assert resolve_workers(10_000) == MAX_WORKERS

    def test_inside_worker_always_serial(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_IN_WORKER", True)
        assert resolve_workers(8) == 1


class TestCostModel:
    def test_threshold_gates_dispatch(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 100)
        assert not should_parallelize(99, 2)
        assert should_parallelize(100, 2)

    def test_single_worker_never_parallel(self):
        assert not should_parallelize(10**9, 1)

    def test_relation_run_counts_fallbacks(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 100)
        run = RelationRun(2)
        try:
            assert not run.should(1)
            assert run.should(1_000_000)
        finally:
            run.close()
        assert run.stats.serial_fallbacks == 1


class TestSplitRanges:
    def test_empty(self):
        assert split_ranges(0, 4) == []
        assert split_ranges(-3, 4) == []

    def test_fewer_items_than_parts(self):
        assert split_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_even_and_remainder(self):
        assert split_ranges(10, 2) == [(0, 5), (5, 10)]
        assert split_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_contiguous_cover(self):
        for count in (1, 7, 23, 100):
            for parts in (1, 2, 5, 9):
                ranges = split_ranges(count, parts)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == count
                for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                    assert stop == start


class TestSharedMemoryRoundTrip:
    def test_roundtrip_preserves_codes(self):
        instance = plant_instance(5, num_columns=4, num_rows=30).instance
        encoding = instance.encoded(True)
        shared = export_encoding(encoding)
        attached = None
        try:
            attached, shm = attach_encoding(shared.handle)
            assert attached.num_rows == encoding.num_rows
            assert attached.arity == encoding.arity
            for mine, theirs in zip(encoding.codes, attached.codes):
                assert list(mine) == list(theirs)
            assert attached.cardinalities == list(encoding.cardinalities)
            assert attached.null_codes == list(encoding.null_codes)
        finally:
            if attached is not None:
                for codes in attached.codes:
                    codes.release()
                shm.close()
            shared.close()

    def test_agree_sets_match_through_shm(self):
        instance = plant_instance(9, num_columns=5, num_rows=25).instance
        encoding = instance.encoded(True)
        shared = export_encoding(encoding)
        try:
            attached, shm = attach_encoding(shared.handle)
            try:
                for left, right in ((0, 1), (3, 17), (24, 2)):
                    assert encoding.agree_set(left, right) == attached.agree_set(
                        left, right
                    )
            finally:
                for codes in attached.codes:
                    codes.release()
                shm.close()
        finally:
            shared.close()

    def test_empty_relation(self):
        instance = RelationInstance.from_rows(Relation("e", ("a", "b")), [])
        encoding = instance.encoded(True)
        shared = export_encoding(encoding)
        try:
            attached, shm = attach_encoding(shared.handle)
            assert attached.num_rows == 0
            assert len(attached.codes) == 2
            shm.close()
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        instance = plant_instance(1, num_columns=3, num_rows=10).instance
        shared = export_encoding(instance.encoded(True))
        shared.close()
        shared.close()  # no FileNotFoundError / double unlink


class TestDispatch:
    def test_results_come_back_in_payload_order(self):
        pool = get_pool(2)
        payloads = [
            {
                "algorithm": "optimized",
                "pairs": [(1 << index, 0)],
                "start": 0,
                "stop": 1,
                "num_attributes": 6,
            }
            for index in range(6)
        ]
        results = pool.map_tasks("closure_shard", payloads)
        # Singleton FD sets have nothing to extend: each shard returns
        # its own RHS untouched, tagging which payload produced it.
        assert results == [[0]] * 6
        assert pool.stats.tasks_dispatched == 6
        assert pool.stats.batches == 1

    def test_worker_error_is_surfaced_with_traceback(self):
        pool = get_pool(2)
        with pytest.raises(WorkerError, match="closure_shard"):
            pool.map_tasks("closure_shard", [{"malformed": True}])

    def test_pool_recreated_on_size_change(self):
        first = get_pool(2)
        again = get_pool(2)
        assert first is again
        resized = get_pool(3)
        assert resized is not first
        assert resized.workers == 3

    def test_dead_worker_is_reaped(self):
        pool = get_pool(2)
        pool.ensure_started()
        victim = pool._procs[0]
        victim.terminate()
        victim.join(5.0)
        results = pool.map_tasks(
            "closure_shard",
            [
                {
                    "algorithm": "optimized",
                    "pairs": [(0b01, 0b10)],
                    "start": 0,
                    "stop": 1,
                    "num_attributes": 2,
                }
            ],
        )
        assert results == [[0b10]]
        assert all(worker.is_alive() for worker in pool._procs)


class TestBudgetPropagation:
    def test_deadline_breach_raises_budget_exceeded(self):
        # check_interval=1 makes the worker's very first cooperative
        # checkpoint probe the (already expired) propagated deadline.
        governor = Governor(Budget(deadline_seconds=1e-9, check_interval=1))
        pool = get_pool(2)
        payloads = [
            {
                "algorithm": "optimized",
                "pairs": [(0b01, 0b10)],
                "start": 0,
                "stop": 1,
                "num_attributes": 2,
            }
        ]
        with activate(governor):
            with pytest.raises(BudgetExceeded):
                pool.map_tasks("closure_shard", payloads, stage="test")

    def test_worker_candidates_fold_into_parent(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
        instance = plant_instance(3, num_columns=5, num_rows=40).instance
        governor = Governor(Budget())
        from repro.discovery.tane import Tane

        with activate(governor):
            Tane(workers=2).discover(instance)
        assert governor.candidates > 0

    def test_candidate_cap_enforced_at_merge(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
        instance = plant_instance(3, num_columns=6, num_rows=40).instance
        governor = Governor(Budget(max_candidates=1))
        from repro.discovery.tane import Tane

        with activate(governor):
            with pytest.raises(BudgetExceeded) as excinfo:
                Tane(workers=2).discover(instance)
        # TANE salvages completed levels on a breach.
        assert excinfo.value.partial is not None


class TestStats:
    def test_as_dict_prefixes_and_units(self):
        stats = PoolStats(
            workers=4,
            batches=2,
            tasks_dispatched=8,
            serial_fallbacks=1,
            attach_seconds=0.002,
            export_seconds=0.001,
            largest_shard=5,
            shard_items=20,
        )
        as_dict = stats.as_dict()
        assert as_dict["pool_workers"] == 4
        assert as_dict["pool_tasks"] == 8
        assert as_dict["pool_serial_fallbacks"] == 1
        assert as_dict["pool_attach_us"] == 2000
        assert as_dict["pool_export_us"] == 1000
        assert all(key.startswith("pool_") for key in as_dict)

    def test_delta_since(self):
        before = PoolStats(workers=2, batches=3, tasks_dispatched=10)
        after = PoolStats(workers=2, batches=5, tasks_dispatched=16)
        delta = after.delta_since(before)
        assert delta.batches == 2
        assert delta.tasks_dispatched == 6

    def test_profile_surfaces_pool_counters(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
        from repro.profiling import profile

        instance = plant_instance(3, num_columns=5, num_rows=40).instance
        report = profile(instance, workers=2)
        assert report.counters.get("pool_workers") == 2
        assert report.counters.get("pool_tasks", 0) > 0


class TestForkHygiene:
    def test_reset_process_state_clears_probe_buffers(self):
        from repro.kernels import pybackend

        pybackend._PROBE_BUFFER.extend([1, 2, 3])
        pybackend._NEG_ONES.extend([-1, -1])
        partitions_module.reset_process_state()
        assert len(pybackend._PROBE_BUFFER) == 0
        assert len(pybackend._NEG_ONES) == 0
        # Partition operations rebuild the scratch space on demand.
        instance = plant_instance(2, num_columns=3, num_rows=12).instance
        encoding = instance.encoded(True)
        from repro.structures.partitions import StrippedPartition

        partition = StrippedPartition.from_value_ids(
            encoding.codes[0], encoding.null_codes[0]
        )
        partition.intersect_ids(encoding.codes[1])  # must not crash

    def test_reset_worker_state_clears_run_owned_globals(self, monkeypatch):
        from repro.parallel import tasks as tasks_module
        from repro.runtime import governor as governor_module

        monkeypatch.setattr(governor_module, "_ACTIVE", object())
        monkeypatch.setattr(pool_mod, "_IN_WORKER", False)
        monkeypatch.setattr(pool_mod, "_POOL", object())
        pool_mod._reset_worker_state()
        assert governor_module._ACTIVE is None
        assert pool_mod._IN_WORKER is True
        assert pool_mod._POOL is None
        assert tasks_module._ATTACHMENTS == {}
        assert tasks_module._ATTACH_SECONDS == 0.0

    def test_workers_env_roundtrip(self, monkeypatch):
        # REPRO_WORKERS drives normalize() without an explicit kwarg.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from repro.core.normalize import Normalizer

        assert Normalizer().workers == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert Normalizer().workers == 1
        assert "REPRO_WORKERS" not in os.environ


class TestPoolLifecycle:
    def test_restart_after_shutdown(self):
        payloads = [
            {
                "algorithm": "optimized",
                "pairs": [(0b01, 0b10)],
                "start": 0,
                "stop": 1,
                "num_attributes": 2,
            }
        ]
        first = get_pool(2)
        assert first.map_tasks("closure_shard", payloads) == [[0b10]]
        shutdown_pool()
        second = get_pool(2)
        assert second is not first
        assert second.map_tasks("closure_shard", payloads) == [[0b10]]

    def test_no_shm_leak_across_epochs(self, monkeypatch):
        from repro.parallel.shm import owned_segments

        monkeypatch.setattr(pool_mod, "SERIAL_THRESHOLD", 0)
        instance = plant_instance(5, num_columns=5, num_rows=40).instance
        encoding = instance.encoded(True)
        for _ in range(3):
            with RelationRun(2, encoding) as run:
                run.map(
                    "agree_pairs",
                    [{"handle": run.handle, "pairs": [(0, 1)]}],
                    stage="test",
                )
            assert not owned_segments()
        prefix = f"repro-shm-{os.getpid()}-"
        try:
            leftovers = [
                name
                for name in os.listdir("/dev/shm")
                if name.startswith(prefix)
            ]
        except OSError:
            leftovers = []
        assert leftovers == []

    def test_closed_pool_refuses_dispatch(self):
        pool = get_pool(2)
        pool.close()
        with pytest.raises(InputError):
            pool.map_tasks("pool_probe", [{"value": 1}])
