"""Seeded verification campaigns as a pytest suite.

The unmarked tests are the fast subset that runs in tier-1; the
``@pytest.mark.fuzz`` campaigns are the larger matrices CI runs on a
schedule (deselect locally with ``-m "not fuzz"``).
"""

import pytest

from repro.datagen.random_tables import random_instance
from repro.verification.differential import canonical_fds, run_fd_differential
from repro.verification.runner import verify_seeds


class TestFastSubset:
    def test_first_seeds_pass_every_check(self):
        report = verify_seeds(6)
        assert report.ok, report.to_str()
        assert report.checks_run >= 6 * 10

    def test_report_counts_dependency_losses(self):
        report = verify_seeds(4)
        assert report.dependency_losses >= 0
        assert "accounting only" in report.to_str()


class TestNullSemanticsParity:
    """Satellite: on NULL-heavy instances, each NULL semantics must give
    one answer unanimously across TANE, DFD, HyFD, and BruteForce."""

    @pytest.mark.parametrize("null_rate", [0.3, 0.6])
    @pytest.mark.parametrize("nen", [True, False])
    def test_all_discoverers_agree_on_nulled_instances(self, null_rate, nen):
        for seed in range(5):
            instance = random_instance(
                seed, 5, 18, domain_size=2, null_rate=null_rate
            )
            disagreements = run_fd_differential(
                instance, null_equals_null=nen
            )
            assert not disagreements, "\n".join(
                d.describe(instance.columns) for d in disagreements
            )

    def test_semantics_actually_differ_somewhere(self):
        """Sanity: the two NULL semantics are not accidentally the same
        code path — some nulled instance must produce different FD sets."""
        from repro.discovery.bruteforce import BruteForceFD

        for seed in range(30):
            instance = random_instance(seed, 4, 12, domain_size=2, null_rate=0.4)
            equal = canonical_fds(BruteForceFD().discover(instance))
            unequal = canonical_fds(
                BruteForceFD(null_equals_null=False).discover(instance)
            )
            if equal != unequal:
                return
        raise AssertionError("NULL semantics never diverged across 30 seeds")


@pytest.mark.fuzz
class TestFuzzCampaigns:
    def test_medium_seed_matrix(self):
        report = verify_seeds(range(100, 140))
        assert report.ok, report.to_str()

    def test_wider_tables(self):
        report = verify_seeds(range(200, 215), num_rows=40, max_columns=7)
        assert report.ok, report.to_str()
