"""Tests for the Graphviz DOT schema export."""

from repro.core.normalize import normalize
from repro.io.graphviz import schema_to_dot
from repro.model.schema import ForeignKey, Relation, Schema


def small_schema():
    dim = Relation("dim", ("id", "name"), primary_key=("id",))
    fact = Relation(
        "fact",
        ("fid", "id"),
        primary_key=("fid",),
        foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
    )
    return Schema([fact, dim])


class TestDotExport:
    def test_nodes_and_edges_present(self):
        dot = schema_to_dot(small_schema())
        assert dot.startswith("digraph schema {")
        assert '"dim"' in dot
        assert '"fact"' in dot
        assert '"fact":p_id -> "dim":p_id' in dot

    def test_primary_key_marked(self):
        dot = schema_to_dot(small_schema())
        assert "id (PK)" in dot

    def test_special_characters_escaped(self):
        schema = Schema([Relation("r", ("a|b", 'c"d'))])
        dot = schema_to_dot(schema)
        assert "a\\|b" in dot
        assert 'c\\"d' in dot

    def test_dangling_fk_target_skipped(self):
        fact = Relation(
            "fact",
            ("id",),
            foreign_keys=[ForeignKey(("id",), "elsewhere", ("id",))],
        )
        dot = schema_to_dot(Schema([fact]))
        assert "elsewhere" not in dot

    def test_normalization_result_exports(self, address):
        result = normalize(address, algorithm="bruteforce")
        dot = schema_to_dot(result.schema)
        assert dot.count("->") >= 1  # the Postcode foreign key
        assert "Postcode (PK)" in dot

    def test_balanced_braces(self):
        dot = schema_to_dot(small_schema())
        assert dot.strip().endswith("}")
        assert dot.count("{") == dot.count("}")
