"""Tests for the synthetic dataset generators and the join machinery."""

import pytest

from repro.datagen.denormalize import JoinSpec, denormalize, equi_join
from repro.datagen.musicbrainz import (
    MUSICBRAINZ_GOLD,
    denormalized_musicbrainz,
    generate_musicbrainz,
)
from repro.datagen.profiles import (
    amalgam_like,
    flight_like,
    horse_like,
    plista_like,
)
from repro.datagen.tpch import TPCH_GOLD, denormalized_tpch, generate_tpch
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from tests.helpers import fd_holds


class TestEquiJoin:
    def make_sides(self):
        left = RelationInstance.from_rows(
            Relation("l", ("id", "ref")), [(1, "a"), (2, "b"), (3, "a")]
        )
        right = RelationInstance.from_rows(
            Relation("r", ("key", "val")), [("a", 10), ("b", 20)]
        )
        return left, right

    def test_inner_join_semantics(self):
        left, right = self.make_sides()
        joined = equi_join(left, right, [("ref", "key")])
        assert joined.columns == ("id", "ref", "val")
        assert sorted(joined.iter_rows()) == [
            (1, "a", 10),
            (2, "b", 20),
            (3, "a", 10),
        ]

    def test_unmatched_rows_dropped(self):
        left = RelationInstance.from_rows(
            Relation("l", ("ref",)), [("a",), ("zz",)]
        )
        right = RelationInstance.from_rows(
            Relation("r", ("key", "v")), [("a", 1)]
        )
        joined = equi_join(left, right, [("ref", "key")])
        assert joined.num_rows == 1

    def test_mn_join_multiplies(self):
        left = RelationInstance.from_rows(Relation("l", ("k",)), [("a",)])
        right = RelationInstance.from_rows(
            Relation("r", ("k2", "v")), [("a", 1), ("a", 2)]
        )
        joined = equi_join(left, right, [("k", "k2")])
        assert joined.num_rows == 2

    def test_name_collision_rejected(self):
        left = RelationInstance.from_rows(Relation("l", ("k", "v")), [(1, 2)])
        right = RelationInstance.from_rows(Relation("r", ("k2", "v")), [(1, 2)])
        with pytest.raises(ValueError, match="collision"):
            equi_join(left, right, [("k", "k2")])

    def test_empty_on_rejected(self):
        left, right = self.make_sides()
        with pytest.raises(ValueError, match="at least one"):
            equi_join(left, right, [])

    def test_denormalize_max_rows_sampling(self):
        left = RelationInstance.from_rows(
            Relation("l", ("k",)), [("a",)] * 50
        )
        right = RelationInstance.from_rows(
            Relation("r", ("k2", "v")), [("a", 1), ("a", 2)]
        )
        result = denormalize(
            left, [JoinSpec(right, (("k", "k2"),))], max_rows=10
        )
        assert result.num_rows == 10


class TestTpch:
    def test_deterministic(self):
        first = denormalized_tpch()
        second = denormalized_tpch()
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_foreign_keys_resolve(self):
        tables = generate_tpch()
        nation_keys = set(tables["nation"].column("n_nationkey"))
        for column in ("c_nationkey", "s_nationkey"):
            table = "customer" if column.startswith("c_") else "supplier"
            assert set(tables[table].column(column)) <= nation_keys

    def test_universal_contains_gold_columns(self):
        universal = denormalized_tpch()
        columns = set(universal.columns)
        for gold in TPCH_GOLD:
            assert gold.columns <= columns

    def test_snowflake_fds_hold_in_universal(self):
        universal = denormalized_tpch()
        rel = universal.relation
        # each dimension key determines its attributes after the join
        cases = [
            (["l_partkey"], ["p_name", "p_brand", "p_type"]),
            (["l_suppkey"], ["s_name", "s_nationkey"]),
            (["l_orderkey"], ["o_custkey", "o_orderdate"]),
            (["o_custkey"], ["c_name", "c_nationkey"]),
            (["c_nationkey"], ["cn_name", "cn_regionkey"]),
            (["cn_regionkey"], ["cr_name"]),
            (["l_partkey", "l_suppkey"], ["ps_availqty", "ps_supplycost"]),
        ]
        for lhs_cols, rhs_cols in cases:
            assert fd_holds(
                universal, rel.mask_of(lhs_cols), rel.mask_of(rhs_cols)
            ), f"{lhs_cols} -> {rhs_cols} must hold"

    def test_shippriority_constant(self):
        universal = denormalized_tpch()
        assert len(set(universal.column("o_shippriority"))) == 1

    def test_lineitem_key_unique(self):
        universal = denormalized_tpch()
        mask = universal.relation.mask_of(["l_orderkey", "l_linenumber"])
        assert universal.distinct_count(mask) == universal.num_rows


class TestMusicBrainz:
    def test_eleven_tables(self):
        assert len(generate_musicbrainz()) == 11

    def test_deterministic(self):
        first = denormalized_musicbrainz()
        second = denormalized_musicbrainz()
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_universal_contains_gold_columns(self):
        universal = denormalized_musicbrainz()
        columns = set(universal.columns)
        for gold in MUSICBRAINZ_GOLD:
            assert gold.columns <= columns

    def test_core_fds_hold(self):
        universal = denormalized_musicbrainz()
        rel = universal.relation
        cases = [
            (["track_id"], ["track_name", "track_medium", "track_credit"]),
            (["track_medium"], ["medium_release", "medium_format"]),
            (["medium_release"], ["release_title", "release_credit"]),
            (["acn_artist"], ["artist_name", "artist_place"]),
            (["artist_place"], ["place_name", "place_area"]),
            (["rl_label"], ["label_name", "label_code", "label_area"]),
        ]
        for lhs_cols, rhs_cols in cases:
            assert fd_holds(
                universal, rel.mask_of(lhs_cols), rel.mask_of(rhs_cols)
            ), f"{lhs_cols} -> {rhs_cols} must hold"

    def test_join_is_not_snowflake(self):
        """track_id alone is NOT a key of the joined result (m:n links)."""
        universal = denormalized_musicbrainz()
        mask = universal.relation.mask_of(["track_id"])
        assert universal.distinct_count(mask) < universal.num_rows


class TestProfiles:
    @pytest.mark.parametrize(
        "generator, expected_cols",
        [
            (horse_like, 16),
            (plista_like, 18),
            (amalgam_like, 18),
            (flight_like, 20),
        ],
    )
    def test_shapes(self, generator, expected_cols):
        instance = generator()
        assert instance.arity == expected_cols
        assert instance.num_rows > 0

    @pytest.mark.parametrize(
        "generator", [horse_like, plista_like, amalgam_like, flight_like]
    )
    def test_deterministic(self, generator):
        assert list(generator(seed=5).iter_rows()) == list(
            generator(seed=5).iter_rows()
        )

    def test_plista_has_single_key_column(self):
        instance = plista_like(num_rows=200)
        ids = instance.column("event_id")
        assert len(set(ids)) == len(ids)

    def test_plista_has_constant_and_null_columns(self):
        instance = plista_like(num_rows=100)
        assert len(set(instance.column("recommendable"))) == 1
        assert all(v is None for v in instance.column("flag_b"))

    def test_horse_correlated_columns(self):
        instance = horse_like(num_rows=200)
        rel = instance.relation
        assert fd_holds(
            instance, rel.mask_of(["lesion_site"]), rel.mask_of(["lesion_type"])
        )

    def test_flight_route_determines_endpoints(self):
        instance = flight_like(num_rows=300)
        rel = instance.relation
        assert fd_holds(
            instance,
            rel.mask_of(["route"]),
            rel.mask_of(["origin", "dest", "origin_city", "distance"]),
        )


class TestRandomInstanceExtensions:
    """Per-column domains and Zipf skew (verification-harness satellites)."""

    def test_scalar_domain_matches_per_column_broadcast(self):
        from repro.datagen.random_tables import random_instance

        scalar = random_instance(7, 3, 40, domain_size=4)
        broadcast = random_instance(7, 3, 40, domain_size=[4, 4, 4])
        assert list(scalar.iter_rows()) == list(broadcast.iter_rows())

    def test_per_column_domains_respected(self):
        from repro.datagen.random_tables import random_instance

        instance = random_instance(1, 3, 200, domain_size=[2, 5, 9])
        for col, bound in enumerate((2, 5, 9)):
            values = {v for v in instance.column(col) if v is not None}
            assert values <= set(range(bound))
        # the wide domain must actually be exercised
        assert len(set(instance.column(2))) > 5

    def test_zipf_skew_concentrates_low_ranks(self):
        from repro.datagen.random_tables import random_instance

        instance = random_instance(5, 1, 500, domain_size=6, skew=2.0)
        values = instance.column(0)
        counts = [values.count(v) for v in range(6)]
        assert counts[0] > counts[-1]
        assert counts[0] > 500 // 6  # clearly above the uniform share

    def test_per_column_skew(self):
        from repro.datagen.random_tables import random_instance

        instance = random_instance(
            11, 2, 400, domain_size=[5, 5], skew=[0.0, 3.0]
        )
        uniform = [instance.column(0).count(v) for v in range(5)]
        skewed = [instance.column(1).count(v) for v in range(5)]
        assert max(skewed) > max(uniform)

    def test_zipf_cumulative_weights_shape(self):
        from repro.datagen.random_tables import zipf_cumulative_weights

        weights = zipf_cumulative_weights(4, 1.0)
        assert len(weights) == 4
        assert weights == sorted(weights)
        assert abs(weights[-1] - 1.0) < 1e-12
        uniform = zipf_cumulative_weights(4, 0.0)
        assert abs(uniform[0] - 0.25) < 1e-12

    def test_parameter_validation(self):
        import pytest as _pytest

        from repro.datagen.random_tables import (
            random_instance,
            zipf_cumulative_weights,
        )

        with _pytest.raises(ValueError, match="entries for"):
            random_instance(0, 3, 5, domain_size=[2, 2])
        with _pytest.raises(ValueError, match="entries for"):
            random_instance(0, 2, 5, skew=[1.0])
        with _pytest.raises(ValueError, match="positive"):
            zipf_cumulative_weights(0, 1.0)
        with _pytest.raises(ValueError, match="non-negative"):
            zipf_cumulative_weights(3, -1.0)

    def test_nulls_still_injected_with_skew(self):
        from repro.datagen.random_tables import random_instance

        instance = random_instance(3, 2, 300, domain_size=3, null_rate=0.4, skew=1.5)
        assert any(v is None for v in instance.column(0))
