"""Tests for the 4NF normalization extension."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.extensions.fournf import FourNFNormalizer
from repro.extensions.mvd import discover_mvds
from repro.discovery.ucc import NaiveUCC
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.structures.settrie import SetTrie


def course_instance():
    """teacher ->> book with NO functional dependencies at all.

    Books and students are shared between teachers, so no accidental FD
    can divert the BCNF phase — the decomposition must come from the
    MVD machinery.
    """
    relation = Relation("course", ("teacher", "book", "student"))
    rows = []
    books = {"Curie": ["B1", "B2"], "Noether": ["B1", "B3"]}
    students = {"Curie": ["s1", "s2"], "Noether": ["s2", "s3"]}
    for teacher in books:
        for book in books[teacher]:
            for student in students[teacher]:
                rows.append((teacher, book, student))
    return RelationInstance.from_rows(relation, rows)


def assert_4nf(instance, max_lhs=2):
    """No non-FD MVD with a non-superkey LHS may remain."""
    keys = SetTrie()
    for key in NaiveUCC().discover(instance):
        keys.insert(key)
    for mvd in discover_mvds(
        instance, max_lhs_size=min(max_lhs, max(0, instance.arity - 2))
    ):
        if mvd.lhs == 0:
            continue  # empty-LHS MVDs are never decomposed (Alg. 4 stance)
        assert keys.contains_subset_of(mvd.lhs) or instance.has_null_in(mvd.lhs), (
            f"violating MVD remains: {mvd.to_str(instance.columns)}"
        )


def reconstruct(result):
    """Join all relations back along the recorded MVD splits."""
    instances = dict(result.instances)
    for step in reversed(result.mvd_steps):
        left = instances.pop(step.r1)
        right = instances.pop(step.r2)
        joined = _join_on(left, right, step.lhs)
        instances[step.parent] = joined
    assert len(instances) >= 1
    return instances


def _join_on(left, right, on):
    from repro.model.schema import Relation as Rel

    rows = []
    right_rows = list(right.iter_rows())
    right_pos = {c: i for i, c in enumerate(right.columns)}
    left_pos = {c: i for i, c in enumerate(left.columns)}
    extra_cols = [c for c in right.columns if c not in left.columns]
    for lrow in left.iter_rows():
        for rrow in right_rows:
            if all(lrow[left_pos[c]] == rrow[right_pos[c]] for c in on):
                rows.append(lrow + tuple(rrow[right_pos[c]] for c in extra_cols))
    return RelationInstance.from_rows(
        Rel(left.name, left.columns + tuple(extra_cols)), rows
    )


class TestCourseExample:
    def test_course_splits_on_teacher(self):
        result = FourNFNormalizer(algorithm="bruteforce").run(course_instance())
        column_sets = {
            frozenset(instance.columns) for instance in result.instances.values()
        }
        assert frozenset({"teacher", "book"}) in column_sets
        assert frozenset({"teacher", "student"}) in column_sets
        assert len(result.mvd_steps) == 1

    def test_course_result_is_4nf(self):
        result = FourNFNormalizer(algorithm="bruteforce").run(course_instance())
        for instance in result.instances.values():
            assert_4nf(instance)

    def test_course_lossless(self):
        """Fagin: joining the two parts on the MVD LHS rebuilds the data."""
        original = course_instance()
        result = FourNFNormalizer(algorithm="bruteforce").run(original)
        assert not result.bcnf.steps  # no FDs -> the BCNF phase is a no-op
        parts = list(result.instances.values())
        assert len(parts) == 2
        joined = _join_on(parts[0], parts[1], result.mvd_steps[0].lhs)
        ordered = joined.project(joined.relation.mask_of(original.columns))
        assert sorted(set(ordered.iter_rows())) == sorted(
            set(original.iter_rows())
        )

    def test_to_str_mentions_mvd(self):
        result = FourNFNormalizer(algorithm="bruteforce").run(course_instance())
        assert "->>" in result.to_str()


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=3, max_value=4),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=10)
    def test_random_tables_reach_4nf(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        result = FourNFNormalizer(algorithm="bruteforce").run(instance)
        for out in result.instances.values():
            assert_4nf(out)

    def test_bcnf_relation_untouched(self, address):
        """A BCNF-conform result without violating MVDs stays as-is."""
        result = FourNFNormalizer(algorithm="bruteforce").run(address)
        # the BCNF phase splits once; MVD phase may add more only if a
        # genuine violating MVD exists — the address parts have none
        # with non-superkey LHS of size <= 2 among non-FD MVDs.
        for instance in result.instances.values():
            assert_4nf(instance)
