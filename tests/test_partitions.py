"""Unit and property tests for stripped partitions and the PLI cache."""

from hypothesis import given
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.model.attributes import iter_bits
from repro.structures.partitions import (
    PLICache,
    StrippedPartition,
    column_value_ids,
)


def partition_signature(partition: StrippedPartition) -> set[frozenset[int]]:
    return {frozenset(cluster) for cluster in partition.clusters}


def reference_partition(columns: list[list], null_equals_null=True) -> set[frozenset[int]]:
    """Definition-level stripped partition of a column combination."""
    groups: dict[tuple, list[int]] = {}
    ids = [column_value_ids(col, null_equals_null) for col in columns]
    for row in range(len(columns[0]) if columns else 0):
        groups.setdefault(tuple(c[row] for c in ids), []).append(row)
    return {frozenset(g) for g in groups.values() if len(g) > 1}


class TestFromColumn:
    def test_strips_singletons(self):
        p = StrippedPartition.from_column(["a", "b", "a", "c"])
        assert partition_signature(p) == {frozenset({0, 2})}

    def test_null_equals_null_default(self):
        p = StrippedPartition.from_column([None, None, "x"])
        assert partition_signature(p) == {frozenset({0, 1})}

    def test_null_not_equal(self):
        p = StrippedPartition.from_column([None, None, "x"], null_equals_null=False)
        assert partition_signature(p) == set()

    def test_error(self):
        p = StrippedPartition.from_column(["a", "a", "a", "b"])
        assert p.error == 2  # cluster of 3 needs 2 removals

    def test_is_unique(self):
        assert StrippedPartition.from_column(["a", "b", "c"]).is_unique
        assert not StrippedPartition.from_column(["a", "a"]).is_unique

    def test_single_cluster(self):
        p = StrippedPartition.single_cluster(4)
        assert partition_signature(p) == {frozenset({0, 1, 2, 3})}
        assert StrippedPartition.single_cluster(1).is_unique
        assert StrippedPartition.single_cluster(0).is_unique


class TestIntersect:
    def test_mismatched_rows_rejected(self):
        import pytest

        left = StrippedPartition([[0, 1]], 2)
        right = StrippedPartition([[0, 1]], 3)
        with pytest.raises(ValueError):
            left.intersect(right)

    def test_simple_product(self):
        a = StrippedPartition.from_column(["x", "x", "y", "y"])
        b = StrippedPartition.from_column(["1", "2", "1", "1"])
        combined = a.intersect(b)
        assert partition_signature(combined) == {frozenset({2, 3})}

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=20),
    )
    def test_intersection_matches_definition(self, seed, cols, rows):
        instance = random_instance(seed, max(cols, 2), rows, domain_size=2)
        a = StrippedPartition.from_column(instance.columns_data[0])
        b = StrippedPartition.from_column(instance.columns_data[1])
        combined = a.intersect(b)
        expected = reference_partition(
            [instance.columns_data[0], instance.columns_data[1]]
        )
        assert partition_signature(combined) == expected


class TestProbes:
    def test_as_probe(self):
        p = StrippedPartition.from_column(["a", "b", "a"])
        probe = p.as_probe()
        assert probe[0] == probe[2] >= 0
        assert probe[1] == -1

    def test_refines_column_true(self):
        p = StrippedPartition.from_column(["a", "a", "b"])
        # rows 0,1 agree on the probe
        assert p.refines_column([7, 7, 9])

    def test_refines_column_false(self):
        p = StrippedPartition.from_column(["a", "a"])
        assert not p.refines_column([1, 2])

    def test_find_violating_pair(self):
        p = StrippedPartition.from_column(["a", "a", "a"])
        pair = p.find_violating_pair([1, 1, 2])
        assert pair is not None
        left, right = pair
        assert {left, right} <= {0, 1, 2}

    def test_find_violating_pair_none(self):
        p = StrippedPartition.from_column(["a", "a"])
        assert p.find_violating_pair([3, 3]) is None

    def test_column_value_ids_null_semantics(self):
        values = [None, None, "x"]
        same = column_value_ids(values, null_equals_null=True)
        assert same[0] == same[1]
        distinct = column_value_ids(values, null_equals_null=False)
        assert distinct[0] != distinct[1]


class TestPLICache:
    def test_single_attribute_cached_upfront(self):
        instance = random_instance(1, 3, 10)
        cache = PLICache(instance)
        assert cache.cache_size() >= 4  # empty set + three singles

    def test_get_builds_and_memoizes(self):
        instance = random_instance(2, 3, 12)
        cache = PLICache(instance)
        first = cache.get(0b11)
        second = cache.get(0b11)
        assert first is second

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=18),
        st.integers(min_value=0, max_value=2**5 - 1),
    )
    def test_cache_matches_definition(self, seed, cols, rows, mask):
        instance = random_instance(seed, cols, rows, domain_size=2)
        mask &= instance.full_mask()
        cache = PLICache(instance)
        got = partition_signature(cache.get(mask))
        if mask == 0:
            expected = (
                {frozenset(range(rows))} if rows > 1 else set()
            )
        else:
            expected = reference_partition(
                [instance.columns_data[i] for i in iter_bits(mask)]
            )
        assert got == expected

    def test_probe_matches_column_value_ids(self):
        instance = random_instance(5, 2, 10, null_rate=0.3)
        cache = PLICache(instance, null_equals_null=False)
        # probe() hands out the shared array('i') encoding vector
        assert list(cache.probe(0)) == column_value_ids(
            instance.columns_data[0], null_equals_null=False
        )
