"""Signal handling and structured exit codes at the CLI boundary.

The contract (docs/ROBUSTNESS.md): SIGINT exits 130 and SIGTERM exits
143 after a graceful teardown (pool down, shared memory unlinked), and
an unrecovered worker crash in strict pool mode maps to exit 5.  The
long-running ``repro watch`` loop is driven as a real subprocess and
signalled from outside — the only honest way to test a signal path.
"""

import importlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import (
    EXIT_INTERRUPTED,
    EXIT_TERMINATED,
    EXIT_WORKER_CRASH,
    main,
)
from repro.io.csv_io import write_csv
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import WorkerCrashError

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def emp_csv(tmp_path):
    instance = RelationInstance(
        Relation("emp", ("emp", "dept", "dname", "loc")),
        [
            ["e1", "e2", "e3", "e4", "e5"],
            ["d1", "d1", "d2", "d2", "d3"],
            ["Sales", "Sales", "Eng", "Eng", "HR"],
            ["NY", "NY", "SF", "SF", "NY"],
        ],
    )
    path = tmp_path / "emp.csv"
    write_csv(instance, path)
    return path


@pytest.fixture()
def changes_json(tmp_path):
    path = tmp_path / "changes.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro/changelog",
                "version": 1,
                "batches": [
                    {
                        "relation": "emp",
                        "inserts": [["e6", "d4", "Ops", "LA"]],
                        "deletes": [],
                    }
                ],
            }
        )
    )
    return path


def _spawn_watch(emp_csv, changes_json):
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "watch",
            str(emp_csv),
            "--changes",
            str(changes_json),
            "--interval",
            "30",
            "--report",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    # Wait for the first batch report — the loop is then parked in its
    # sleep, the steady state a signal would interrupt in production.
    assert proc.stdout is not None
    line = proc.stdout.readline()
    assert line, "watch produced no output before the signal"
    return proc


@pytest.mark.parametrize(
    ("signum", "expected"),
    [(signal.SIGINT, EXIT_INTERRUPTED), (signal.SIGTERM, EXIT_TERMINATED)],
)
def test_watch_signal_exit_codes(emp_csv, changes_json, signum, expected):
    proc = _spawn_watch(emp_csv, changes_json)
    try:
        time.sleep(0.3)  # let the loop reach its sleep
        proc.send_signal(signum)
        code = proc.wait(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert code == expected


def test_keyboard_interrupt_maps_to_130(emp_csv, monkeypatch, capsys):
    normalize_mod = importlib.import_module("repro.core.normalize")

    def _interrupt(self, *args, **kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr(normalize_mod.Normalizer, "run", _interrupt)
    assert main([str(emp_csv)]) == EXIT_INTERRUPTED
    assert "interrupted" in capsys.readouterr().err


def test_worker_crash_maps_to_5(emp_csv, monkeypatch, capsys):
    normalize_mod = importlib.import_module("repro.core.normalize")

    def _crash(self, *args, **kwargs):
        raise WorkerCrashError("worker task 'hyfd_validate' crashed")

    monkeypatch.setattr(normalize_mod.Normalizer, "run", _crash)
    assert main([str(emp_csv)]) == EXIT_WORKER_CRASH
    assert "hyfd_validate" in capsys.readouterr().err


def test_sigterm_handler_is_restored(emp_csv, monkeypatch):
    previous = signal.getsignal(signal.SIGTERM)
    normalize_mod = importlib.import_module("repro.core.normalize")

    def _interrupt(self, *args, **kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr(normalize_mod.Normalizer, "run", _interrupt)
    main([str(emp_csv)])
    assert signal.getsignal(signal.SIGTERM) is previous
