"""Shared test utilities: semantic FD checks and canonical forms."""

from __future__ import annotations

from repro.model.attributes import iter_bits
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.structures.partitions import column_value_ids

__all__ = ["canon_fds", "fd_holds", "is_minimal_fd", "semantic_closure_of_set"]


def fd_holds(
    instance: RelationInstance,
    lhs: int,
    rhs: int,
    null_equals_null: bool = True,
) -> bool:
    """Definition-level FD check: grouping rows by LHS values."""
    probes = [
        column_value_ids(instance.columns_data[i], null_equals_null)
        for i in range(instance.arity)
    ]
    lhs_bits = list(iter_bits(lhs))
    rhs_bits = list(iter_bits(rhs))
    seen: dict[tuple, tuple] = {}
    for row in range(instance.num_rows):
        key = tuple(probes[i][row] for i in lhs_bits)
        value = tuple(probes[i][row] for i in rhs_bits)
        if key in seen:
            if seen[key] != value:
                return False
        else:
            seen[key] = value
    return True


def is_minimal_fd(
    instance: RelationInstance,
    lhs: int,
    rhs_attr: int,
    null_equals_null: bool = True,
) -> bool:
    """True iff ``lhs → rhs_attr`` holds and no immediate generalization does."""
    rhs = 1 << rhs_attr
    if not fd_holds(instance, lhs, rhs, null_equals_null):
        return False
    for attr in iter_bits(lhs):
        if fd_holds(instance, lhs & ~(1 << attr), rhs, null_equals_null):
            return False
    return True


def canon_fds(fds: FDSet) -> set[tuple[int, int]]:
    """Canonical single-RHS form: set of (lhs_mask, rhs_attr_index)."""
    out = set()
    for lhs, rhs in fds.items():
        for attr in iter_bits(rhs):
            out.add((lhs, attr))
    return out


def semantic_closure_of_set(
    instance: RelationInstance, lhs: int, null_equals_null: bool = True
) -> int:
    """Attribute closure of ``lhs`` straight from the data (no FD set)."""
    closure = lhs
    for attr in range(instance.arity):
        bit = 1 << attr
        if closure & bit:
            continue
        if fd_holds(instance, lhs, bit, null_equals_null):
            closure |= bit
    return closure
