"""Tests for the Metanome-style profiling facade."""

from repro.datagen.random_tables import random_instance
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.profiling import profile, profile_many


class TestColumnStats:
    def test_basic_stats(self):
        instance = RelationInstance.from_rows(
            Relation("t", ("id", "cat", "sparse")),
            [(1, "a", None), (2, "a", "xx"), (3, "bb", None)],
        )
        report = profile(instance, fd_algorithm="bruteforce")
        by_name = {stat.name: stat for stat in report.columns}
        assert by_name["id"].is_unique
        assert by_name["id"].distinct == 3
        assert by_name["cat"].distinct == 2
        assert by_name["cat"].min_length == 1
        assert by_name["cat"].max_length == 2
        assert by_name["sparse"].nulls == 2

    def test_constant_detection(self):
        instance = RelationInstance.from_rows(
            Relation("t", ("c",)), [(5,), (5,)]
        )
        report = profile(instance, fd_algorithm="bruteforce")
        assert report.columns[0].is_constant

    def test_empty_relation(self):
        instance = RelationInstance(Relation("t", ("a",)), [[]])
        report = profile(instance, fd_algorithm="bruteforce")
        assert report.num_records == 0
        assert not report.columns[0].is_unique


class TestProfile:
    def test_profile_counts(self, address):
        report = profile(address, fd_algorithm="bruteforce")
        assert report.fds.count_single_rhs() == 12
        first_last = address.relation.mask_of(["First", "Last"])
        assert first_last in report.uccs

    def test_timings_recorded(self, address):
        report = profile(address, fd_algorithm="bruteforce")
        assert set(report.timings) == {
            "column_stats",
            "fd_discovery",
            "ucc_discovery",
        }

    def test_to_str(self, address):
        text = profile(address, fd_algorithm="bruteforce").to_str()
        assert "minimal FDs: 12" in text
        assert "Postcode" in text

    def test_algorithm_instance_accepted(self, address):
        from repro.discovery.tane import Tane

        report = profile(address, fd_algorithm=Tane())
        assert report.fds.count_single_rhs() == 12


class TestProfileMany:
    def test_profiles_and_inds(self):
        customers = RelationInstance.from_rows(
            Relation("customers", ("id", "name")), [(1, "a"), (2, "b")]
        )
        orders = RelationInstance.from_rows(
            Relation("orders", ("oid", "cust")), [(10, 1), (11, 2), (12, 1)]
        )
        profiles, inds = profile_many(
            {"customers": customers, "orders": orders},
            fd_algorithm="bruteforce",
        )
        assert set(profiles) == {"customers", "orders"}
        rendered = {ind.to_str() for ind in inds}
        assert "orders(cust) <= customers(id)" in rendered

    def test_random_instances(self):
        instances = {
            f"t{i}": random_instance(i, 3, 8, domain_size=3, name=f"t{i}")
            for i in range(3)
        }
        profiles, _ = profile_many(instances, fd_algorithm="bruteforce")
        for name, report in profiles.items():
            assert report.relation == name
            assert report.num_attributes == 3
