"""LevelIndex: differential tests against the SetTrie it replaced.

:class:`~repro.structures.lattice_index.LevelIndex` took over the
boundary-set bookkeeping in DFD/DUCC (``discovery/lattice.py``) and the
TANE candidate-generation guard from :class:`SetTrie`; this suite pins
the shared surface to the trie behaviour property-by-property and
covers the batch entry points the trie never had.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.structures.lattice_index import LevelIndex
from repro.structures.settrie import SetTrie

masks = st.integers(min_value=0, max_value=2**10 - 1)
mask_lists = st.lists(masks, max_size=25)


class TestBasics:
    def test_insert_contains_remove(self):
        index = LevelIndex()
        assert index.insert(0b0101)
        assert not index.insert(0b0101)  # duplicate
        assert 0b0101 in index
        assert 0b0100 not in index
        assert len(index) == 1 and bool(index)
        assert index.remove(0b0101)
        assert not index.remove(0b0101)
        assert not index

    def test_constructor_seeds_and_dedups(self):
        index = LevelIndex([0b11, 0b1, 0b11])
        assert len(index) == 2
        assert sorted(index.iter_all()) == [0b1, 0b11]

    def test_empty_set_membership(self):
        index = LevelIndex()
        index.insert(0)
        assert 0 in index
        assert index.contains_subset_of(0b111)
        assert index.contains_subset_of(0)
        assert not index.contains_proper_subset_of(0)

    def test_contains_batch_and_all(self):
        index = LevelIndex([0b01, 0b10])
        assert index.contains_batch([0b01, 0b11, 0b10]) == [
            True, False, True,
        ]
        assert index.contains_all([0b01, 0b10])
        assert not index.contains_all([0b01, 0b11])
        assert index.contains_all([])


class TestAgainstSetTrie:
    @given(mask_lists, masks)
    def test_subset_queries_match(self, stored, query):
        trie, index = SetTrie(), LevelIndex(stored)
        for mask in stored:
            trie.insert(mask)
        assert index.contains_subset_of(query) == (
            trie.contains_subset_of(query)
        )
        assert index.contains_proper_subset_of(query) == (
            trie.contains_proper_subset_of(query)
        )
        assert list(index.iter_subsets_of(query)) == list(
            trie.iter_subsets_of(query)
        )

    @given(mask_lists, masks)
    def test_superset_and_membership_match(self, stored, query):
        trie, index = SetTrie(), LevelIndex(stored)
        for mask in stored:
            trie.insert(mask)
        assert index.contains_superset_of(query) == (
            trie.contains_superset_of(query)
        )
        assert (query in index) == (query in trie)

    @given(mask_lists)
    def test_iter_all_order_matches(self, stored):
        trie, index = SetTrie(), LevelIndex(stored)
        for mask in stored:
            trie.insert(mask)
        assert list(index.iter_all()) == list(trie.iter_all())

    @given(mask_lists, mask_lists)
    def test_remove_leaves_consistent_state(self, stored, removed):
        trie, index = SetTrie(), LevelIndex(stored)
        for mask in stored:
            trie.insert(mask)
        for mask in removed:
            assert index.remove(mask) == trie.remove(mask)
        assert list(index.iter_all()) == list(trie.iter_all())
        assert len(index) == len(trie)
