"""Smoke tests: the example scripts must run and produce their key output.

The two large recovery examples (TPC-H, MusicBrainz) are exercised by
the integration tests and benchmarks at controlled scale; here the
fast examples run end-to-end exactly as a user would invoke them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Step 1 - FD discovery: 12 minimal FDs" in out
        assert "Lossless-join check passed" in out
        assert "CREATE TABLE" in out

    def test_fd_discovery_tour(self, capsys):
        out = run_example("fd_discovery_tour.py", ["--dataset", "planets"], capsys)
        assert "All four algorithms agree" in out
        assert "Atmosphere -> Rings" in out

    def test_interactive_scripted(self, capsys):
        out = run_example("interactive_normalization.py", [], capsys)
        assert "The user stopped normalizing" in out

    def test_data_errors(self, capsys):
        out = run_example("data_errors.py", [], capsys)
        assert "Postcode -> City (g3=" in out
        assert "Frankfrt" in out  # the reported exception row

    def test_beyond_the_paper(self, capsys):
        out = run_example("beyond_the_paper.py", [], capsys)
        assert "teacher ->> book" in out
        assert "functional-dependency" in out
        assert "digraph schema" in out

    @pytest.mark.parametrize(
        "name",
        ["tpch_normalization.py", "musicbrainz_normalization.py"],
    )
    def test_large_examples_are_importable(self, name):
        """The heavy examples at least parse and expose main()."""
        module = runpy.run_path(str(EXAMPLES / name), run_name="not_main")
        assert callable(module["main"])
