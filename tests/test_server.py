"""The ``repro serve`` daemon: protocol, sessions, routing, tenancy.

Four layers, tested bottom-up:

* the HTTP/1.1 parser (``repro.server.protocol``) against well-formed
  and hostile inputs,
* the session registry (``repro.server.sessions``) — LRU eviction,
  idle expiry, busy-pinning, journal-backed revival, budget rollback,
* the routed endpoints through a real in-process server + the blocking
  client,
* multi-tenant isolation: N concurrent clients interleaving batches
  must each converge to the DDL a serial single-tenant run produces,
  and eviction under pressure must never drop a session with in-flight
  work (the revive-from-journal path keeps evicted tenants correct).

The subprocess/signal end of the daemon lives in
``tests/test_server_smoke.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.incremental.changes import ChangeBatch
from repro.incremental.engine import IncrementalNormalizer
from repro.io.csv_io import read_csv
from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.governor import Budget
from repro.server import (
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerError,
    SessionExistsError,
    SessionOptions,
    SessionRegistry,
)
from repro.server.protocol import ProtocolError, Request, read_request

CSV = b"emp,dept,mgr\n1,sales,ann\n2,sales,ann\n3,eng,bob\n"


def _parse(raw: bytes, max_body: int = 1 << 20):
    """Drive the async request parser over a canned byte stream."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(run())


class TestProtocol:
    def test_parses_request_line_query_and_headers(self):
        request = _parse(
            b"GET /v1/sessions?name=emp&x=1 HTTP/1.1\r\n"
            b"Host: h\r\nX-Repro-Tenant: alice\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/sessions"
        assert request.query == {"name": "emp", "x": "1"}
        assert request.headers["x-repro-tenant"] == "alice"
        assert request.keep_alive

    def test_reads_content_length_body(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_mid_request_eof_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(b"GET / HTTP/1.1\r\nHost")
        assert excinfo.value.status == 400

    def test_chunked_is_501(self):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 501

    def test_oversized_body_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"a" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413

    def test_connection_close_disables_keep_alive(self):
        request = _parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_json_body_helper_rejects_garbage(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestSessionOptions:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(InputError):
            SessionOptions(algorithm="nope")

    def test_rejects_bad_budget_string_eagerly(self):
        with pytest.raises(InputError):
            SessionOptions(deadline="not-a-duration")

    def test_round_trips_through_json(self):
        options = SessionOptions(
            algorithm="tane", target="3nf", deadline="5s", max_candidates=10
        )
        assert SessionOptions.from_json(options.to_json()) == options

    def test_budget_built_from_human_strings(self):
        budget = SessionOptions(
            deadline="2s", memory_limit="1MB", max_candidates=7
        ).budget()
        assert budget.deadline_seconds == pytest.approx(2.0)
        assert budget.max_memory_bytes == 1024 * 1024
        assert budget.max_candidates == 7

    def test_from_params_parses_header_flag_and_ints(self):
        options = SessionOptions.from_params(
            {"algorithm": "tane", "header": "false", "max_candidates": "3"}
        )
        assert options.algorithm == "tane"
        assert not options.has_header
        assert options.max_candidates == 3


class TestSessionRegistry:
    def _registry(self, tmp_path=None, **kwargs):
        kwargs.setdefault("max_sessions", 8)
        kwargs.setdefault("idle_ttl", 3600)
        if tmp_path is not None:
            kwargs.setdefault("resume_dir", tmp_path / "state")
        return SessionRegistry(**kwargs)

    def test_create_and_get(self, tmp_path):
        registry = self._registry(tmp_path)
        session = registry.create(
            "t1", CSV, "emp", SessionOptions(), session_id="s1"
        )
        assert registry.get("t1", "s1") is session
        assert registry.get("t2", "s1") is None
        assert session.engine.applied_batches == 0
        assert registry.counters["discovery_runs"] == 1

    def test_duplicate_session_id_rejected(self, tmp_path):
        registry = self._registry(tmp_path)
        registry.create("t1", CSV, "emp", SessionOptions(), session_id="s1")
        # The dedicated conflict type is what the app maps to 409.
        with pytest.raises(SessionExistsError):
            registry.create(
                "t1", CSV, "emp", SessionOptions(), session_id="s1"
            )

    def test_invalid_names_rejected(self):
        registry = self._registry()
        for bad in ("", "../x", "a b", "x" * 65, ".hidden"):
            with pytest.raises(InputError):
                registry.create(bad, CSV, "emp", SessionOptions())

    def test_lookup_paths_reject_traversal(self, tmp_path):
        """has_persisted/revive must refuse hostile identifiers too —
        not just create — or they become path components."""
        registry = self._registry(tmp_path)
        registry.create("t", CSV, "emp", SessionOptions(), "s1")
        for tenant, sid in (("../t", "s1"), ("t", "../s1"), ("t", "..")):
            with pytest.raises(InputError):
                registry.has_persisted(tenant, sid)
            with pytest.raises(InputError):
                registry.revive(tenant, sid)

    def test_lru_eviction_skips_busy_sessions(self):
        registry = self._registry(max_sessions=2)
        s1 = registry.create("t", CSV, "emp", SessionOptions(), "s1")
        s1.busy = 1
        registry.create("t", CSV, "emp", SessionOptions(), "s2")
        registry.create("t", CSV, "emp", SessionOptions(), "s3")
        # s1 is the LRU entry but busy: s2 (next-oldest idle) goes.
        assert registry.get("t", "s1") is not None
        assert registry.get("t", "s2") is None
        assert registry.get("t", "s3") is not None
        assert registry.counters["sessions_evicted"] == 1

    def test_all_busy_runs_over_capacity(self):
        registry = self._registry(max_sessions=1)
        s1 = registry.create("t", CSV, "emp", SessionOptions(), "s1")
        s1.busy = 1
        s2 = registry.create("t", CSV, "emp", SessionOptions(), "s2")
        s2.busy = 1
        assert len(registry) == 2  # over cap rather than killing live work

    def test_idle_expiry_skips_busy_sessions(self):
        registry = self._registry(idle_ttl=10)
        s1 = registry.create("t", CSV, "emp", SessionOptions(), "s1")
        s2 = registry.create("t", CSV, "emp", SessionOptions(), "s2")
        s1.busy = 1
        now = max(s1.last_used, s2.last_used) + 11
        expired = registry.expire_idle(now=now)
        assert [s.session_id for s in expired] == ["s2"]
        assert registry.get("t", "s1") is not None

    def test_delete_removes_persisted_state(self, tmp_path):
        registry = self._registry(tmp_path)
        session = registry.create(
            "t", CSV, "emp", SessionOptions(), "s1"
        )
        assert registry.has_persisted("t", "s1")
        registry.delete(session)
        assert not registry.has_persisted("t", "s1")
        assert registry.get("t", "s1") is None


class TestRevival:
    """Durability: revive == journal replay, never rediscovery."""

    def _baseline(self, tmp_path, batches=()):
        registry = SessionRegistry(resume_dir=tmp_path / "state")
        session = registry.create(
            "t", CSV, "emp", SessionOptions(), "s1"
        )
        for batch in batches:
            registry.apply_batch(session, batch)
        return registry, session

    def test_revive_hits_journal_and_matches(self, tmp_path):
        batch = ChangeBatch(inserts=(("4", "eng", "bob"),), deletes=(0,))
        _, session = self._baseline(tmp_path, [batch])
        fresh = SessionRegistry(resume_dir=tmp_path / "state")
        revived = fresh.revive("t", "s1")
        assert revived.resumed_from_journal
        assert fresh.counters["journal_hits"] == 1
        assert fresh.counters["discovery_runs"] == 0
        assert revived.engine.applied_batches == 1
        assert revived.engine.ddl() == session.engine.ddl()
        assert revived.migration_sql() == session.migration_sql()

    def test_revive_applies_pending_changelog_tail(self, tmp_path):
        registry, session = self._baseline(tmp_path)
        # Simulate a crash after the changelog append but before the
        # engine applied (and journaled) the batch.
        tail = ChangeBatch(inserts=(("9", "ops", "cat"),))
        session._append_changelog(tail)
        fresh = SessionRegistry(resume_dir=tmp_path / "state")
        revived = fresh.revive("t", "s1")
        assert revived.engine.applied_batches == 1
        assert revived.engine.live("emp").num_rows == 4

    def test_revive_drops_torn_final_changelog_line(self, tmp_path):
        registry, session = self._baseline(
            tmp_path, [ChangeBatch(inserts=(("4", "eng", "bob"),))]
        )
        changes = session.directory / "changes.jsonl"
        with open(changes, "a", encoding="utf-8") as handle:
            handle.write('{"inserts": [["torn')  # cut mid-append
        fresh = SessionRegistry(resume_dir=tmp_path / "state")
        revived = fresh.revive("t", "s1")
        assert revived.engine.applied_batches == 1
        assert revived.engine.live("emp").num_rows == 4

    def test_budget_breach_rolls_back_to_journaled_state(self, tmp_path):
        registry, session = self._baseline(
            tmp_path, [ChangeBatch(inserts=(("4", "eng", "bob"),))]
        )
        ddl_before = session.engine.ddl()
        # An already-expired deadline breaches at the first governed
        # checkpoint inside maintenance — mid-mutation, the dirty case.
        session.engine.budget = Budget(
            deadline_seconds=1e-9, check_interval=1
        )
        with pytest.raises(BudgetExceeded):
            registry.apply_batch(
                session, ChangeBatch(inserts=(("5", "ops", "dan"),))
            )
        # The in-memory (possibly dirty) engine is gone ...
        assert registry.get("t", "s1") is None
        # ... and the durable state is the pre-batch journal.
        fresh = SessionRegistry(resume_dir=tmp_path / "state")
        revived = fresh.revive("t", "s1")
        assert revived.engine.applied_batches == 1
        assert revived.engine.ddl() == ddl_before


# ----------------------------------------------------------------------
# In-process server harness
# ----------------------------------------------------------------------
class ServerThread:
    """A real daemon on a real socket, driven from a background thread."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        self.config = ServerConfig(**config_kwargs)
        self.server: ReproServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = ReproServer(self.config)
            self.loop = asyncio.get_running_loop()
            ready = asyncio.Event()
            task = asyncio.create_task(
                self.server.run_until_shutdown(ready)
            )
            await ready.wait()
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not come up"
        return self

    def __exit__(self, *exc):
        assert self.loop is not None and self.server is not None
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server did not drain"

    def client(self, tenant="default") -> ReproClient:
        assert self.server is not None
        return ReproClient(
            "127.0.0.1", self.server.bound_port, tenant=tenant
        )


class TestEndpoints:
    def test_full_session_lifecycle(self, tmp_path):
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            client = harness.client("alice")
            info = client.create_session(CSV, name="emp", session="s1")
            assert info["session"] == "s1"
            assert info["rows"] == 3
            assert info["applied_batches"] == 0

            outcome = client.apply_batch(
                "s1", {"inserts": [["4", "eng", "bob"]], "deletes": [0]}
            )
            assert outcome["inserts_applied"] == 1
            assert outcome["deletes_applied"] == 1
            assert outcome["applied_batches"] == 1

            # Server bytes == offline engine bytes for the same stream.
            engine = IncrementalNormalizer(read_csv(CSV, name="emp"))
            engine.apply_batch(
                ChangeBatch(inserts=(("4", "eng", "bob"),), deletes=(0,))
            )
            assert client.ddl("s1") == engine.ddl()

            schema = client.schema("s1")
            assert {r["name"] for r in schema["relations"]} == set(
                engine.result.instances
            )
            assert client.schema_text("s1").rstrip("\n") == (
                engine.schema.to_str()
            )

            sessions = client.list_sessions()
            assert [s["session"] for s in sessions] == ["s1"]

            view = client.normalize("s1")
            assert view["ddl"] == engine.ddl()
            assert view["applied_batches"] == 1

            client.delete_session("s1")
            with pytest.raises(ServerError) as excinfo:
                client.session_info("s1")
            assert excinfo.value.status == 404

    def test_error_taxonomy_status_codes(self, tmp_path):
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            client = harness.client()

            with pytest.raises(ServerError) as excinfo:
                client.session_info("ghost")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "not_found"

            with pytest.raises(ServerError) as excinfo:
                client.create_session(b"a,a\n1,2\n", name="dup")
            assert excinfo.value.status == 400
            assert excinfo.value.code == "input_error"
            # duplicate-header context survives the wire
            assert excinfo.value.payload["error"]["duplicates"] == ["a"]

            with pytest.raises(ServerError) as excinfo:
                client.create_session(CSV, name="emp", deadline="bogus")
            assert excinfo.value.status == 400

            client.create_session(CSV, name="emp", session="s1")
            with pytest.raises(ServerError) as excinfo:
                client.create_session(CSV, name="emp", session="s1")
            assert excinfo.value.status == 409

            status, _, _ = client.request("PUT", "/v1/sessions/s1/ddl")
            assert status == 405
            status, _, _ = client.request("GET", "/nope")
            assert status == 404

    def test_budget_exceeded_maps_to_429_with_tags(self, tmp_path):
        # Wide enough that discovery is guaranteed to hit a governed
        # checkpoint after the (already-expired) 1 microsecond deadline.
        header = ",".join(f"c{i}" for i in range(8))
        rows = "\n".join(
            ",".join(f"v{(row * (col + 3)) % 17}" for col in range(8))
            for row in range(300)
        )
        big_csv = (header + "\n" + rows + "\n").encode("utf-8")
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            client = harness.client()
            with pytest.raises(ServerError) as excinfo:
                client.create_session(
                    big_csv, name="emp", deadline="0.000001"
                )
            error = excinfo.value
            assert error.status == 429
            assert error.code == "budget_exceeded"
            body = error.payload["error"]
            assert body["reason"] == "deadline"
            assert body["stage"]
            assert body["fidelity"] == "none"

    def test_tenants_are_namespaced(self, tmp_path):
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            alice, bob = harness.client("alice"), harness.client("bob")
            alice.create_session(CSV, name="emp", session="s1")
            with pytest.raises(ServerError) as excinfo:
                bob.session_info("s1")
            assert excinfo.value.status == 404
            assert bob.list_sessions() == []

    def test_evicted_session_revives_transparently(self, tmp_path):
        with ServerThread(
            resume_dir=str(tmp_path / "state"), max_sessions=1
        ) as harness:
            client = harness.client()
            client.create_session(CSV, name="emp", session="s1")
            ddl_s1 = client.ddl("s1")
            client.create_session(CSV, name="emp", session="s2")  # evicts s1
            stats = client.stats()["sessions"]
            assert stats["sessions_evicted"] >= 1
            # s1 comes back from its journal, byte-identical.
            assert client.ddl("s1") == ddl_s1
            stats = client.stats()["sessions"]
            assert stats["journal_hits"] >= 1
            assert stats["discovery_runs"] == 2  # one per created session

    def test_hostile_identifiers_cannot_escape_resume_dir(self, tmp_path):
        """Traversal in the tenant header or URL session id is a 400 on
        *every* route — lookup, revive, and DELETE included — so no
        request can read or rmtree outside --resume-dir."""
        state = tmp_path / "state"
        victim = tmp_path / "victim" / "s1"
        victim.mkdir(parents=True)
        (victim / "meta.json").write_text("{}", encoding="utf-8")
        with ServerThread(resume_dir=str(state)) as harness:
            evil = ReproClient(
                "127.0.0.1", harness.server.bound_port, tenant="../victim"
            )
            with pytest.raises(ServerError) as excinfo:
                evil.session_info("s1")
            assert excinfo.value.status == 400
            status, _, _ = evil.request("DELETE", "/v1/sessions/s1")
            assert status == 400
            client = harness.client()
            # '%2e%2e' unquotes to '..' in the path segment
            status, _, _ = client.request("DELETE", "/v1/sessions/%2e%2e")
            assert status == 400
            status, _, _ = client.request("GET", "/v1/sessions/%2e%2e/ddl")
            assert status == 400
        assert (victim / "meta.json").exists()

    def test_duplicate_create_race_maps_to_409(self, tmp_path):
        """Defeat the fast-path existence check the way a create/create
        race would: the registry's own duplicate detection must surface
        as the same 409, not a 400."""

        async def run():
            server = ReproServer(
                ServerConfig(resume_dir=str(tmp_path / "state"))
            )
            request = Request(
                method="POST",
                target="/v1/sessions?session=s1&name=emp",
                path="/v1/sessions",
                query={"session": "s1", "name": "emp"},
                headers={},
                body=CSV,
            )
            first = await server._dispatch(request)
            assert first.status == 201
            # Blind the pre-check; only registry.create's check remains.
            server.registry.get = lambda *a, **k: None
            server.registry.has_persisted = lambda *a, **k: False
            second = await server._dispatch(request)
            assert second.status == 409
            assert b"session_exists" in second.body

        asyncio.run(run())

    def test_concurrent_revival_revives_once(self, tmp_path):
        """Two requests hitting an evicted session must share one
        revival: a duplicate engine over the same changelog/journal
        files would diverge on the next batch."""

        async def run():
            server = ReproServer(
                ServerConfig(resume_dir=str(tmp_path / "state"))
            )
            await asyncio.to_thread(
                server.registry.create,
                "t", CSV, "emp", SessionOptions(), "s1",
            )
            server.registry.discard(server.registry.get("t", "s1"))
            assert server.registry.get("t", "s1") is None
            a, b = await asyncio.gather(
                server._session("t", "s1"), server._session("t", "s1")
            )
            assert a is b
            assert server.registry.counters["sessions_revived"] == 1

        asyncio.run(run())

    def test_delimiter_survives_query_encoding(self, tmp_path):
        """Client-side urlencode: a tab delimiter must round-trip the
        query string instead of corrupting the request target."""
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            client = harness.client()
            tsv = CSV.replace(b",", b"\t")
            info = client.create_session(
                tsv, name="emp", session="s1", delimiter="\t"
            )
            assert info["options"]["delimiter"] == "\t"
            assert info["rows"] == 3
            assert len(info["columns"]) == 3

    def test_stats_and_health(self, tmp_path):
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            client = harness.client()
            assert client.health()["status"] == "ok"
            stats = client.stats()
            assert stats["server"]["requests_total"] >= 1
            assert stats["sessions"]["live_sessions"] == 0


def _serial_ddl(csv_bytes: bytes, name: str, batches) -> str:
    """The offline single-tenant reference run for one change stream."""
    engine = IncrementalNormalizer(read_csv(csv_bytes, name=name))
    for batch in batches:
        engine.apply_batch(batch)
    return engine.ddl()


class TestConcurrentTenants:
    """Satellite 3: isolation under genuinely interleaved load."""

    TENANTS = {
        "alice": (
            b"emp,dept,mgr\n1,sales,ann\n2,sales,ann\n3,eng,bob\n",
            [
                ChangeBatch(inserts=(("4", "eng", "bob"),)),
                ChangeBatch(inserts=(("5", "ops", "cat"),), deletes=(0,)),
                ChangeBatch(deletes=(1,)),
            ],
        ),
        "bob": (
            b"sku,cat,tax\np1,food,low\np2,food,low\np3,tool,high\n",
            [
                ChangeBatch(inserts=(("p4", "tool", "high"),)),
                ChangeBatch(inserts=(("p5", "food", "low"),)),
                ChangeBatch(deletes=(2,)),
            ],
        ),
        "carol": (
            b"s,c,term\ns1,db,fall\ns2,db,fall\ns3,ml,spring\n",
            [
                ChangeBatch(inserts=(("s4", "ml", "spring"),)),
                ChangeBatch(deletes=(0,), inserts=(("s5", "db", "fall"),)),
                ChangeBatch(inserts=(("s6", "os", "winter"),)),
            ],
        ),
    }

    def _drive(self, harness, tenant, csv_bytes, batches, barrier):
        client = harness.client(tenant)
        client.create_session(csv_bytes, name="rel", session="s")
        barrier.wait(timeout=60)  # maximize interleaving across tenants
        for batch in batches:
            client.apply_batch("s", batch.to_json())
        return tenant, client.ddl("s"), client.migration("s")

    def test_interleaved_tenants_match_serial_runs(self, tmp_path):
        with ServerThread(resume_dir=str(tmp_path / "state")) as harness:
            barrier = threading.Barrier(len(self.TENANTS))
            with ThreadPoolExecutor(len(self.TENANTS)) as pool:
                futures = [
                    pool.submit(
                        self._drive, harness, tenant, csv, batches, barrier
                    )
                    for tenant, (csv, batches) in self.TENANTS.items()
                ]
                results = {f.result()[0]: f.result()[1:] for f in futures}

        for tenant, (csv_bytes, batches) in self.TENANTS.items():
            served_ddl, served_migration = results[tenant]
            assert served_ddl == _serial_ddl(csv_bytes, "rel", batches), (
                f"tenant {tenant} diverged from its serial reference run"
            )
            engine = IncrementalNormalizer(read_csv(csv_bytes, name="rel"))
            log = []
            for batch in batches:
                outcome = engine.apply_batch(batch)
                if outcome.schema_changed:
                    log.append(
                        f"-- batch {outcome.batch_index} "
                        f"({outcome.relation})\n" + outcome.migration.to_sql()
                    )
            expected = "\n".join(log) if log else "-- No schema changes.\n"
            assert served_migration == expected

    def test_eviction_pressure_never_breaks_active_tenants(self, tmp_path):
        """max_sessions=1 under 3 concurrent tenants: every request must
        still succeed (evicted sessions revive from their journals)."""
        with ServerThread(
            resume_dir=str(tmp_path / "state"), max_sessions=1
        ) as harness:
            barrier = threading.Barrier(len(self.TENANTS))
            with ThreadPoolExecutor(len(self.TENANTS)) as pool:
                futures = [
                    pool.submit(
                        self._drive, harness, tenant, csv, batches, barrier
                    )
                    for tenant, (csv, batches) in self.TENANTS.items()
                ]
                results = {f.result()[0]: f.result()[1:] for f in futures}
            stats = harness.client().stats()["sessions"]

        assert stats["sessions_evicted"] >= 1, (
            "the test meant to exercise eviction pressure but none happened"
        )
        for tenant, (csv_bytes, batches) in self.TENANTS.items():
            assert results[tenant][0] == _serial_ddl(
                csv_bytes, "rel", batches
            )


class TestServeSubmitParsers:
    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.port == 8651
        assert args.resume_dir is None

    def test_submit_parser_accepts_actions(self):
        from repro.cli import build_submit_parser

        args = build_submit_parser().parse_args(
            ["data.csv", "--session", "s1", "--ddl", "-", "--stats"]
        )
        assert args.file == "data.csv"
        assert args.ddl == "-"
        assert args.stats

    def test_cli_dispatches_serve_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "daemon" in capsys.readouterr().out
