"""Tests for checkpoint journaling, replay validation, and kill/resume."""

import json

import pytest

from repro.core.normalize import Normalizer
from repro.datagen.random_tables import random_instance
from repro.io.ddl import schema_to_ddl
from repro.io.serialization import checkpoint_from_json, checkpoint_to_json
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.checkpointing import PipelineState, load_state, save_state
from repro.runtime.degrade import RelationFidelity
from repro.runtime.errors import CheckpointError
from repro.runtime.faults import FaultPlan, SimulatedKill


def make_state():
    fds = FDSet(3)
    fds.add_masks(0b001, 0b110)
    state = PipelineState(config={"algorithm": "hyfd", "target": "bcnf"})
    state.record_inputs(
        [
            RelationInstance.from_rows(
                Relation("r", ("a", "b", "c")), [("1", "2", "3")]
            )
        ]
    )
    state.record_discovery("r", fds, RelationFidelity(relation="r"))
    state.record_decision(
        {
            "kind": "fd",
            "relation": "r",
            "lhs": ["a"],
            "rhs": ["b", "c"],
            "edited_rhs": ["b", "c"],
        }
    )
    state.record_decision({"kind": "key", "relation": "r_rest", "key": ["a"]})
    return state


class TestDecisionLog:
    def test_fresh_recordings_are_not_replayed(self):
        state = make_state()
        assert not state.replaying  # cursor sits past its own recordings

    def test_replay_in_order(self):
        state = make_state()
        state.cursor = 0  # as after load_state
        first = state.next_decision("fd", "r")
        assert first["kind"] == "fd"
        second = state.next_decision("key", "r_rest")
        assert second["key"] == ["a"]
        assert state.next_decision("key", "anything") is None

    def test_fd_request_stops_at_key_phase(self):
        state = make_state()
        state.cursor = 1  # the next recorded decision is the key
        assert state.next_decision("fd", "r_rest") is None
        assert state.cursor == 1  # not consumed: the key phase reads it

    def test_relation_mismatch_diverges(self):
        state = make_state()
        state.cursor = 0
        with pytest.raises(CheckpointError, match="diverged"):
            state.next_decision("fd", "other_relation")

    def test_kind_mismatch_diverges(self):
        state = make_state()
        state.cursor = 0  # the recorded head is an "fd" decision
        with pytest.raises(CheckpointError, match="diverged"):
            state.next_decision("key", "r")


class TestValidation:
    def test_config_mismatch_refused(self):
        state = make_state()
        with pytest.raises(CheckpointError, match="refusing to resume"):
            state.validate_against(
                {"algorithm": "hyfd", "target": "3nf"}, []
            )

    def test_input_mismatch_refused(self):
        state = make_state()
        other = RelationInstance.from_rows(
            Relation("r", ("a", "b")), [("1", "2")]
        )
        with pytest.raises(CheckpointError, match="do not match"):
            state.validate_against(state.config, [other])

    def test_matching_run_accepted(self):
        state = make_state()
        same = RelationInstance.from_rows(
            Relation("r", ("a", "b", "c")), [("1", "2", "3")]
        )
        state.validate_against(dict(state.config), [same])


class TestDiskRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        state = make_state()
        path = tmp_path / "run.ckpt"
        save_state(state, path)
        back = load_state(path)
        assert back.config == state.config
        assert back.inputs == state.inputs
        assert back.decisions == state.decisions
        assert back.complete == state.complete
        assert back.cursor == 0  # a loaded state replays from the start
        assert dict(back.discovered["r"].items()) == dict(
            state.discovered["r"].items()
        )

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_state(make_state(), path)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_state(tmp_path / "absent.ckpt")

    def test_garbage_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_wrong_format_marker(self, tmp_path):
        payload = checkpoint_to_json(make_state())
        payload["format"] = "something/else"
        path = tmp_path / "fmt.ckpt"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_missing_keys_are_malformed(self):
        payload = checkpoint_to_json(make_state())
        del payload["decisions"]
        with pytest.raises(CheckpointError, match="malformed"):
            checkpoint_from_json(payload)


class TestKillAndResume:
    """The headline robustness guarantee: a mid-run kill is survivable
    and the resumed run reproduces the reference DDL byte-for-byte."""

    def ddl(self, result):
        return schema_to_ddl(result.schema, result.instances)

    def make_inputs(self):
        # Two input relations: the checkpoint flushes after the first
        # relation's discovery, so kills across a wide tick range land
        # *after* a flush and genuinely exercise the resume path.
        def named(name, instance):
            return RelationInstance(
                Relation(name, instance.columns), instance.columns_data
            )

        return [
            named("alpha", random_instance(3, 4, 15, domain_size=[3, 2, 4, 3])),
            named(
                "beta",
                random_instance(5, 6, 30, domain_size=[3, 3, 4, 2, 5, 3]),
            ),
        ]

    def test_kill_then_resume_reproduces_reference(self, tmp_path):
        inputs = self.make_inputs()
        reference = self.ddl(Normalizer(algorithm="hyfd").run(inputs))

        resumed_from_file = 0
        for at_tick in (30, 100, 250, 450):
            ckpt = tmp_path / f"kill-{at_tick}.ckpt"
            plan = FaultPlan(mode="kill", at_tick=at_tick)
            governed = Normalizer(
                algorithm="hyfd", checkpoint_path=ckpt, fault_plan=plan
            )
            try:
                result = governed.run(inputs)
            except SimulatedKill:
                if ckpt.exists():
                    state = load_state(ckpt)
                    result = Normalizer(
                        algorithm="hyfd", checkpoint_path=ckpt
                    ).run(inputs, resume_state=state)
                    resumed_from_file += 1
                else:  # killed before the first flush: rerun fresh
                    result = Normalizer(algorithm="hyfd").run(inputs)
            assert self.ddl(result) == reference, f"at_tick={at_tick}"
        # At least one kill must have landed after a flush, otherwise
        # the resume path was never actually exercised.
        assert resumed_from_file >= 1

    def test_completed_checkpoint_replays_identically(self, tmp_path, university):
        ckpt = tmp_path / "full.ckpt"
        reference = Normalizer(algorithm="hyfd", checkpoint_path=ckpt).run(
            university
        )
        state = load_state(ckpt)
        assert state.complete
        replayed = Normalizer(algorithm="hyfd", checkpoint_path=ckpt).run(
            university, resume_state=state
        )
        assert self.ddl(replayed) == self.ddl(reference)

    def test_resume_with_different_config_refused(self, tmp_path, university):
        ckpt = tmp_path / "cfg.ckpt"
        Normalizer(algorithm="hyfd", checkpoint_path=ckpt).run(university)
        state = load_state(ckpt)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            Normalizer(algorithm="hyfd", target="3nf").run(
                university, resume_state=state
            )
