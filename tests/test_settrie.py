"""Unit and property tests for the set-trie."""

from hypothesis import given
from hypothesis import strategies as st

from repro.structures.settrie import SetTrie

masks = st.integers(min_value=0, max_value=2**10 - 1)
mask_lists = st.lists(masks, max_size=25)


class TestBasics:
    def test_insert_and_contains(self):
        trie = SetTrie()
        assert trie.insert(0b101)
        assert 0b101 in trie
        assert 0b100 not in trie

    def test_insert_duplicate_returns_false(self):
        trie = SetTrie()
        assert trie.insert(0b1)
        assert not trie.insert(0b1)
        assert len(trie) == 1

    def test_empty_set_membership(self):
        trie = SetTrie()
        trie.insert(0)
        assert 0 in trie
        assert trie.contains_subset_of(0)
        assert trie.contains_subset_of(0b111)

    def test_len_and_bool(self):
        trie = SetTrie()
        assert not trie
        trie.insert(0b1)
        trie.insert(0b10)
        assert len(trie) == 2
        assert trie

    def test_remove(self):
        trie = SetTrie()
        trie.insert(0b11)
        assert trie.remove(0b11)
        assert 0b11 not in trie
        assert not trie.remove(0b11)

    def test_remove_keeps_prefix_members(self):
        trie = SetTrie()
        trie.insert(0b1)
        trie.insert(0b11)
        trie.remove(0b11)
        assert 0b1 in trie
        assert len(trie) == 1

    def test_remove_keeps_extension_members(self):
        trie = SetTrie()
        trie.insert(0b1)
        trie.insert(0b11)
        trie.remove(0b1)
        assert 0b11 in trie


class TestSubsetQueries:
    def test_contains_subset_of(self):
        trie = SetTrie()
        trie.insert(0b011)
        assert trie.contains_subset_of(0b111)
        assert trie.contains_subset_of(0b011)
        assert not trie.contains_subset_of(0b101)

    def test_contains_proper_subset_of(self):
        trie = SetTrie()
        trie.insert(0b011)
        assert not trie.contains_proper_subset_of(0b011)
        assert trie.contains_proper_subset_of(0b111)

    def test_iter_subsets_of(self):
        trie = SetTrie()
        for mask in (0b001, 0b010, 0b011, 0b100):
            trie.insert(mask)
        assert set(trie.iter_subsets_of(0b011)) == {0b001, 0b010, 0b011}

    def test_contains_superset_of(self):
        trie = SetTrie()
        trie.insert(0b110)
        assert trie.contains_superset_of(0b100)
        assert trie.contains_superset_of(0b010)
        assert trie.contains_superset_of(0b110)
        assert not trie.contains_superset_of(0b001)

    def test_iter_all(self):
        trie = SetTrie()
        for mask in (0b1, 0b10, 0b11):
            trie.insert(mask)
        assert set(trie.iter_all()) == {0b1, 0b10, 0b11}


class TestProperties:
    @given(mask_lists, masks)
    def test_contains_subset_matches_bruteforce(self, stored, query):
        trie = SetTrie()
        for mask in stored:
            trie.insert(mask)
        expected = any(mask & ~query == 0 for mask in stored)
        assert trie.contains_subset_of(query) == expected

    @given(mask_lists, masks)
    def test_contains_superset_matches_bruteforce(self, stored, query):
        trie = SetTrie()
        for mask in stored:
            trie.insert(mask)
        expected = any(query & ~mask == 0 for mask in stored)
        assert trie.contains_superset_of(query) == expected

    @given(mask_lists, masks)
    def test_iter_subsets_matches_bruteforce(self, stored, query):
        trie = SetTrie()
        for mask in stored:
            trie.insert(mask)
        expected = {mask for mask in stored if mask & ~query == 0}
        assert set(trie.iter_subsets_of(query)) == expected

    @given(mask_lists)
    def test_insert_then_iter_all(self, stored):
        trie = SetTrie()
        for mask in stored:
            trie.insert(mask)
        assert set(trie.iter_all()) == set(stored)
        assert len(trie) == len(set(stored))

    @given(mask_lists, mask_lists)
    def test_remove_leaves_consistent_state(self, stored, removed):
        trie = SetTrie()
        for mask in stored:
            trie.insert(mask)
        for mask in removed:
            trie.remove(mask)
        expected = set(stored) - set(removed)
        assert set(trie.iter_all()) == expected
        for mask in expected:
            assert mask in trie
