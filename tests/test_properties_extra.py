"""Extra cross-cutting property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import optimized_closure
from repro.core.key_derivation import derive_keys
from repro.core.normalize import normalize
from repro.core.violations import find_violating_fds
from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.structures.settrie import SetTrie


class TestViolationSemantics:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=20)
    def test_violating_iff_no_key_subset(self, seed, cols, rows):
        """Cross-check Algorithm 4's core rule against a direct scan."""
        instance = random_instance(seed, cols, rows, domain_size=2)
        extended = optimized_closure(BruteForceFD().discover(instance))
        keys = derive_keys(extended, instance.full_mask())
        violating = {
            (fd.lhs, fd.rhs) for fd in find_violating_fds(extended, keys)
        }
        for lhs, rhs in extended.items():
            if lhs == 0:
                continue
            has_key_subset = any(key & ~lhs == 0 for key in keys)
            assert ((lhs, rhs) in violating) == (not has_key_subset)

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=15)
    def test_3nf_violations_are_subset_of_bcnf(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        extended = optimized_closure(BruteForceFD().discover(instance))
        keys = derive_keys(extended, instance.full_mask())
        bcnf = {
            (fd.lhs, fd.rhs)
            for fd in find_violating_fds(extended, keys, target="bcnf")
        }
        tnf = {
            (fd.lhs, fd.rhs)
            for fd in find_violating_fds(extended, keys, target="3nf")
        }
        assert tnf <= bcnf


class TestNormalizeIdempotence:
    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=10)
    def test_second_run_changes_nothing(self, seed, cols, rows):
        """Normalizing an already-normalized relation is a no-op."""
        instance = random_instance(seed, cols, rows, domain_size=2)
        first = normalize(instance, algorithm="bruteforce")
        for out in first.instances.values():
            again = normalize(out.rename(out.name), algorithm="bruteforce")
            assert again.steps == []
            assert len(again.instances) == 1

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=10)
    def test_decomposition_log_is_consistent(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        result = normalize(instance, algorithm="bruteforce")
        # replaying the log forward from the original reaches exactly
        # the final relation names
        alive = {instance.name}
        for step in result.steps:
            assert step.parent in alive
            alive.discard(step.parent)
            alive.add(step.r1)
            alive.add(step.r2)
        assert alive == set(result.instances)

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=10)
    def test_attributes_partition_into_r1_r2(self, seed, cols, rows):
        """Each split covers the parent: R1 ∪ R2 = R, R1 ∩ R2 = LHS."""
        instance = random_instance(seed, cols, rows, domain_size=2)
        result = normalize(instance, algorithm="bruteforce")
        columns_of = {instance.name: set(instance.columns)}
        by_name = {i.name: i for i in result.instances.values()}
        for step in result.steps:
            parent_cols = columns_of[step.parent]
            r2_cols = set(step.lhs) | set(step.rhs)
            r1_cols = parent_cols - set(step.rhs)
            columns_of[step.r1] = r1_cols
            columns_of[step.r2] = r2_cols
            assert r1_cols | r2_cols == parent_cols
            assert r1_cols & r2_cols == set(step.lhs)
        for name, inst in by_name.items():
            assert set(inst.columns) == columns_of[name]


class TestSetTrieInterleaved:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove"]),
                st.integers(min_value=0, max_value=2**6 - 1),
            ),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=2**6 - 1),
    )
    def test_subset_queries_after_mixed_operations(self, operations, query):
        trie = SetTrie()
        reference: set[int] = set()
        for op, mask in operations:
            if op == "insert":
                trie.insert(mask)
                reference.add(mask)
            else:
                trie.remove(mask)
                reference.discard(mask)
        expected = any(mask & ~query == 0 for mask in reference)
        assert trie.contains_subset_of(query) == expected
        expected_sup = any(query & ~mask == 0 for mask in reference)
        assert trie.contains_superset_of(query) == expected_sup


class TestCsvUnicode:
    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",), blacklist_characters="\r\n"
                    ),
                    max_size=12,
                ).filter(lambda s: s != ""),
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",), blacklist_characters="\r\n"
                    ),
                    max_size=12,
                ).filter(lambda s: s != ""),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=20)
    def test_roundtrip_arbitrary_text(self, rows):
        import tempfile
        from pathlib import Path

        from repro.io.csv_io import read_csv, write_csv
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        instance = RelationInstance.from_rows(Relation("t", ("a", "b")), rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            write_csv(instance, path)
            back = read_csv(path)
        assert list(back.iter_rows()) == rows
