"""Tests for NormalizationResult details and the PrecomputedFDs adapter."""

import pytest

from repro.core.normalize import normalize
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.precomputed import PrecomputedFDs
from repro.model.fd import FD, FDSet


class TestDiscoveredFds:
    def test_result_carries_discovered_fds(self, address):
        result = normalize(address, algorithm="bruteforce")
        assert "address" in result.discovered_fds
        fds = result.discovered_fds["address"]
        assert fds.count_single_rhs() == 12

    def test_discovered_fds_are_pre_closure(self, address):
        result = normalize(address, algorithm="bruteforce")
        fds = result.discovered_fds["address"]
        # the minimal (unextended) set; closure would aggregate further
        assert fds.average_rhs_size() == result.stats[0].avg_rhs_before_closure

    def test_discovered_fds_reusable(self, address):
        first = normalize(address, algorithm="bruteforce")
        second = normalize(
            address, algorithm=PrecomputedFDs(first.discovered_fds)
        )
        assert {n: i.columns for n, i in first.instances.items()} == {
            n: i.columns for n, i in second.instances.items()
        }
        assert second.timings["fd_discovery"] < 0.1


class TestPrecomputedFDs:
    def test_unknown_relation_rejected(self, address):
        adapter = PrecomputedFDs({})
        with pytest.raises(KeyError, match="no precomputed FDs"):
            adapter.discover(address)

    def test_arity_mismatch_rejected(self, address):
        adapter = PrecomputedFDs({"address": FDSet(2, [FD(0b1, 0b10)])})
        with pytest.raises(ValueError, match="attributes"):
            adapter.discover(address)

    def test_returns_copy(self, address):
        fds = BruteForceFD().discover(address)
        adapter = PrecomputedFDs({"address": fds})
        served = adapter.discover(address)
        served.add_masks(0b1, 0b10000)
        assert dict(adapter.discover(address).items()) == dict(fds.items())


class TestReconstructErrors:
    def test_unknown_original_rejected(self, address):
        result = normalize(address, algorithm="bruteforce")
        with pytest.raises(ValueError, match="unknown original"):
            result.reconstruct("nope")

    def test_multi_relation_reconstruct(self, address, university):
        result = normalize([address, university], algorithm="bruteforce")
        for name, original in (("address", address), ("university", university)):
            rebuilt = result.reconstruct(name)
            assert sorted(rebuilt.iter_rows()) == sorted(original.iter_rows())
