"""Differential runner tests, including the mutation smoke test.

The acceptance bar for the harness itself: a deliberately corrupted
discoverer must be caught by the differential runner, and the shrinker
must hand back a reproduction of at most 6 rows x 4 columns.
"""

import pytest

from repro.datagen.random_tables import random_instance
from repro.discovery.base import FDAlgorithm
from repro.discovery.hyfd import HyFD
from repro.model.fd import FDSet
from repro.verification.differential import (
    Disagreement,
    canonical_fds,
    run_fd_differential,
    run_ucc_differential,
    semantic_fd_errors,
)
from repro.verification.planted import plant_instance
from repro.verification.runner import verify_seeds
from repro.verification.shrinker import shrink_instance


class _DropWideLhs(FDAlgorithm):
    """Mutant: silently discards every FD with a multi-attribute LHS."""

    name = "mutant-drop-wide-lhs"

    def discover(self, instance):
        fds = HyFD(null_equals_null=self.null_equals_null).discover(instance)
        kept = FDSet(fds.num_attributes)
        for lhs, rhs in fds.items():
            if lhs.bit_count() < 2:
                kept.add_masks(lhs, rhs)
        return kept


class _InventFd(FDAlgorithm):
    """Mutant: claims the first attribute determines the last one."""

    name = "mutant-invent-fd"

    def discover(self, instance):
        fds = HyFD(null_equals_null=self.null_equals_null).discover(instance)
        if instance.arity >= 2:
            last = instance.arity - 1
            if not fds.rhs_of(1) & (1 << last):
                fds.add_masks(1, 1 << last)
        return fds


def _instance_with_wide_lhs_fd():
    """First seeded instance whose minimal cover has a 2-attribute LHS."""
    for seed in range(100):
        instance = random_instance(seed, 4, 16, domain_size=2)
        fds = HyFD().discover(instance)
        if any(lhs.bit_count() >= 2 for lhs, _ in fds.items()):
            return instance
    raise AssertionError("no instance with a wide-LHS FD found")


class TestAgreement:
    def test_all_discoverers_agree_on_random_instances(self):
        for seed in range(6):
            instance = random_instance(seed, 5, 20, domain_size=3, null_rate=0.2)
            for nen in (True, False):
                assert not run_fd_differential(instance, null_equals_null=nen)

    def test_ucc_discoverers_agree(self):
        for seed in range(6):
            instance = random_instance(seed, 5, 20, domain_size=3)
            assert not run_ucc_differential(instance)

    def test_needs_two_algorithms(self):
        instance = random_instance(0, 3, 5)
        with pytest.raises(ValueError, match="at least two"):
            run_fd_differential(instance, ["hyfd"])
        with pytest.raises(ValueError, match="at least two"):
            run_ucc_differential(instance, ["ducc"])


class TestMutationSmoke:
    def test_dropped_fds_are_caught_and_shrunk(self):
        instance = _instance_with_wide_lhs_fd()
        algorithms = {"bruteforce": "bruteforce", "mutant": _DropWideLhs()}
        disagreements = run_fd_differential(instance, algorithms)
        assert disagreements, "mutant must be caught"
        assert disagreements[0].missing  # it *drops* FDs
        assert not disagreements[0].extra

        shrunk = shrink_instance(
            instance,
            lambda inst: bool(run_fd_differential(inst, algorithms)),
        )
        assert shrunk.num_rows <= 6
        assert shrunk.arity <= 4
        # the shrunk table still witnesses the disagreement
        assert run_fd_differential(shrunk, algorithms)

    def test_invented_fds_are_caught(self):
        for seed in range(40):
            instance = random_instance(seed, 4, 18, domain_size=3)
            algorithms = {"bruteforce": "bruteforce", "mutant": _InventFd()}
            disagreements = run_fd_differential(instance, algorithms)
            if disagreements:
                assert disagreements[0].extra or disagreements[0].missing
                return
        raise AssertionError("invented FD never disagreed with the oracle")

    def test_full_campaign_catches_mutant_with_repro(self):
        report = verify_seeds(
            [0],
            shrink=True,
            fd_algorithms={"bruteforce": "bruteforce", "mutant": _DropWideLhs()},
        )
        caught = [
            f for f in report.failures if f.check.startswith("fd-differential")
        ]
        assert caught, "campaign must catch the mutant"
        shrunk = [f for f in caught if f.shrunk is not None]
        assert shrunk
        for failure in shrunk:
            assert failure.shrunk.num_rows <= 6
            assert failure.shrunk.arity <= 4
            assert failure.repro and "RelationInstance" in failure.repro
        rendered = report.to_str()
        assert "FAILURES" in rendered
        assert "pytest reproduction" in rendered


class TestSemanticErrors:
    def test_clean_output_has_no_errors(self):
        planted = plant_instance(5, num_columns=5, num_rows=20)
        from repro.discovery.base import discover_fds

        fds = discover_fds(planted.instance, "bruteforce")
        assert not semantic_fd_errors(
            planted.instance, fds, planted_cover=planted.cover
        )

    def test_unsound_fd_detected(self):
        instance = random_instance(1, 3, 12, domain_size=2)
        from repro.discovery.base import discover_fds

        fds = discover_fds(instance, "bruteforce")
        corrupt = fds.copy()
        # claim an FD that the oracle rejected: some non-FD exists unless
        # the instance is key-only; find one by brute force
        for lhs in range(1, 8):
            for attr in range(3):
                bit = 1 << attr
                if lhs & bit:
                    continue
                from repro.verification.differential import fd_holds_in

                if not fd_holds_in(instance, lhs, bit):
                    corrupt.add_masks(lhs, bit)
                    errors = semantic_fd_errors(instance, corrupt)
                    assert errors.unsound
                    return
        pytest.skip("instance satisfies every FD")

    def test_non_minimal_fd_detected(self):
        planted = plant_instance(7, num_columns=4, num_rows=20)
        from repro.discovery.base import discover_fds

        fds = discover_fds(planted.instance, "bruteforce")
        corrupt = fds.copy()
        full = planted.instance.full_mask()
        widened_any = False
        for lhs, rhs in list(fds.items()):
            outside = full & ~(lhs | rhs)
            if lhs and outside:
                corrupt.add_masks(lhs | (outside & -outside), rhs)
                widened_any = True
                break
        if not widened_any:
            pytest.skip("no FD can be widened on this seed")
        errors = semantic_fd_errors(planted.instance, corrupt)
        assert errors.non_minimal

    def test_uncovered_planted_fd_detected(self):
        planted = plant_instance(9, num_columns=5, num_rows=25)
        if not list(planted.cover.items()):
            pytest.skip("seed planted no FDs")
        empty = FDSet(planted.instance.arity)
        errors = semantic_fd_errors(
            planted.instance, empty, planted_cover=planted.cover
        )
        assert errors.uncovered


class TestDescribe:
    def test_disagreement_rendering(self):
        d = Disagreement(
            kind="fd",
            baseline="bruteforce",
            algorithm="mutant",
            null_equals_null=True,
            missing=((0b11, 2),),
            extra=((0b1, 1),),
        )
        text = d.describe(("a", "b", "c"))
        assert "a,b -> c" in text
        assert "a -> b" in text
        assert "mutant vs bruteforce" in text

    def test_canonical_fds_roundtrip(self):
        fds = FDSet(3)
        fds.add_masks(0b001, 0b110)
        assert canonical_fds(fds) == {(1, 1), (1, 2)}
