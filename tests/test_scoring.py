"""Tests for the §7 scoring features."""

import pytest

from repro.core.scoring import (
    DistinctEstimator,
    rank_keys,
    rank_violating_fds,
    score_key,
    score_violating_fd,
    shared_rhs_attributes,
)
from repro.model.fd import FD
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def make(columns, rows):
    return RelationInstance.from_rows(Relation("t", tuple(columns)), rows)


class TestKeyScore:
    def test_perfect_key_scores_one(self):
        # single attribute, short values, leftmost position
        instance = make(["id", "payload"], [("a1", "x" * 30), ("b2", "y" * 30)])
        score = score_key(instance, 0b01)
        assert score.length_score == 1.0
        assert score.value_score == 1.0
        assert score.position_score == 1.0
        assert score.total == pytest.approx(1.0)

    def test_length_score_formula(self):
        instance = make(["a", "b", "c"], [(1, 2, 3)])
        assert score_key(instance, 0b011).length_score == pytest.approx(1 / 2)
        assert score_key(instance, 0b111).length_score == pytest.approx(1 / 3)

    def test_value_score_penalizes_long_values(self):
        instance = make(["k"], [("x" * 12,)])
        # max(1, 12-7) = 5
        assert score_key(instance, 0b1).value_score == pytest.approx(1 / 5)

    def test_value_score_caps_at_one(self):
        instance = make(["k"], [("tiny",)])
        assert score_key(instance, 0b1).value_score == 1.0

    def test_position_score_left_and_between(self):
        instance = make(["x", "k1", "gap", "k2"], [(1, 2, 3, 4)])
        score = score_key(instance, 0b1010)  # k1, k2
        # left(X)=1 (x), between(X)=1 (gap)
        assert score.position_score == pytest.approx(0.5 * (1 / 2 + 1 / 2))

    def test_rank_keys_prefers_short_left_keys(self):
        instance = make(
            ["id", "a", "b"],
            [(1, "p", "q"), (2, "p", "r"), (3, "s", "q")],
        )
        ranking = rank_keys(instance, [0b001, 0b110])
        assert ranking[0].key == 0b001

    def test_rank_keys_deterministic_on_ties(self):
        instance = make(["a", "b"], [(1, 2)])
        first = rank_keys(instance, [0b01, 0b10])
        second = rank_keys(instance, [0b10, 0b01])
        assert [s.key for s in first] == [s.key for s in second]


class TestViolatingFDScore:
    def test_length_score_formula(self):
        instance = make(["a", "b", "c", "d", "e"], [(1, 2, 3, 4, 5)])
        fd = FD(0b00001, 0b00110)  # |X|=1, |Y|=2, |R|=5 -> rhs cap 3
        score = score_violating_fd(instance, fd)
        assert score.length_score == pytest.approx(0.5 * (1.0 + 2 / 3))

    def test_position_score_ignores_gap_between_sides(self):
        # LHS {a}, RHS {d,e}: both sides contiguous -> full position score
        instance = make(["a", "b", "c", "d", "e"], [(1, 2, 3, 4, 5)])
        score = score_violating_fd(instance, FD(0b00001, 0b11000))
        assert score.position_score == 1.0

    def test_position_score_penalizes_scattered_rhs(self):
        instance = make(["a", "b", "c", "d", "e"], [(1, 2, 3, 4, 5)])
        score = score_violating_fd(instance, FD(0b00001, 0b10010))  # b and e
        assert score.position_score == pytest.approx(0.5 * (1.0 + 1 / 3))

    def test_duplication_score_exact(self):
        instance = make(
            ["x", "y", "z"],
            [(1, "a", 0), (1, "a", 1), (2, "b", 2), (2, "b", 3)],
        )
        estimator = DistinctEstimator(instance, exact=True)
        score = score_violating_fd(instance, FD(0b001, 0b010), estimator)
        # uniq(x)/4 = 0.5, uniq(y)/4 = 0.5 -> 0.5*(2-0.5-0.5) = 0.5
        assert score.duplication_score == pytest.approx(0.5)

    def test_duplication_bloom_close_to_exact(self):
        rows = [(i % 5, f"v{i % 7}", i) for i in range(100)]
        instance = make(["x", "y", "z"], rows)
        exact = score_violating_fd(
            instance, FD(0b001, 0b010), DistinctEstimator(instance, exact=True)
        )
        bloom = score_violating_fd(
            instance, FD(0b001, 0b010), DistinctEstimator(instance)
        )
        assert bloom.duplication_score == pytest.approx(
            exact.duplication_score, abs=0.1
        )

    def test_feature_ablation_neutralizes(self):
        instance = make(["a", "b", "c"], [(1, 2, 3), (1, 2, 4)])
        fd = FD(0b001, 0b010)
        ablated = score_violating_fd(instance, fd, features=("length",))
        assert ablated.value_score == 0.5
        assert ablated.position_score == 0.5
        assert ablated.duplication_score == 0.5
        assert ablated.length_score != 0.5 or True  # length stays live

    def test_rank_violating_fds_order(self, address):
        postcode = address.relation.mask_of(["Postcode"])
        city_mayor = address.relation.mask_of(["City", "Mayor"])
        first_mask = address.relation.mask_of(["First"])
        ranking = rank_violating_fds(
            address,
            [FD(postcode, city_mayor), FD(first_mask, postcode)],
            DistinctEstimator(address, exact=True),
        )
        assert ranking[0].fd.lhs == postcode  # the semantically right split

    def test_total_is_mean_of_features(self):
        instance = make(["a", "b", "c"], [(1, 2, 3)])
        score = score_violating_fd(instance, FD(0b001, 0b010))
        expected = (
            score.length_score
            + score.value_score
            + score.position_score
            + score.duplication_score
        ) / 4
        assert score.total == pytest.approx(expected)


class TestDistinctEstimator:
    def test_exact_counts(self):
        instance = make(["x"], [(1,), (1,), (2,)])
        estimator = DistinctEstimator(instance, exact=True)
        assert estimator.distinct(0b1) == 2.0

    def test_caching(self):
        instance = make(["x"], [(i,) for i in range(50)])
        estimator = DistinctEstimator(instance)
        assert estimator.distinct(0b1) == estimator.distinct(0b1)

    def test_duplication_ratio_bounds(self):
        instance = make(["x"], [(1,)] * 10)
        estimator = DistinctEstimator(instance, exact=True)
        assert estimator.duplication_ratio(0b1) == pytest.approx(0.9)
        empty = RelationInstance(Relation("e", ("x",)), [[]])
        assert DistinctEstimator(empty).duplication_ratio(0b1) == 0.0


class TestSharedRhs:
    def test_shared_attributes_found(self):
        fd = FD(0b0001, 0b0110)
        others = [fd, FD(0b1000, 0b0100)]
        assert shared_rhs_attributes(fd, others) == 0b0100

    def test_self_not_counted(self):
        fd = FD(0b0001, 0b0110)
        assert shared_rhs_attributes(fd, [fd]) == 0
