"""Tests for ``repro apply-batch`` / ``repro watch``."""

import json

import pytest

from repro.cli import build_apply_batch_parser, main
from repro.io.csv_io import write_csv
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


@pytest.fixture()
def emp_csv(tmp_path):
    instance = RelationInstance(
        Relation("emp", ("emp", "dept", "dname", "loc")),
        [
            ["e1", "e2", "e3", "e4", "e5"],
            ["d1", "d1", "d2", "d2", "d3"],
            ["Sales", "Sales", "Eng", "Eng", "HR"],
            ["NY", "NY", "SF", "SF", "NY"],
        ],
    )
    path = tmp_path / "emp.csv"
    write_csv(instance, path)
    return path


@pytest.fixture()
def changes_json(tmp_path):
    path = tmp_path / "changes.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro/changelog",
                "version": 1,
                "batches": [
                    {
                        "relation": "emp",
                        "inserts": [["e6", "d4", "Ops", "LA"]],
                        "deletes": [],
                    },
                    {
                        "relation": "emp",
                        "inserts": [["e7", "d1", "Sales", "SF"]],
                        "deletes": [0],
                    },
                ],
            }
        )
    )
    return path


class TestParser:
    def test_defaults(self):
        args = build_apply_batch_parser().parse_args(
            ["emp.csv", "--changes", "c.json"]
        )
        assert args.algorithm == "hyfd"
        assert args.target == "bcnf"
        assert not args.report

    def test_watch_flags(self):
        args = build_apply_batch_parser(watch=True).parse_args(
            ["emp.csv", "--changes", "c.jsonl", "--once", "--interval", "0.5"]
        )
        assert args.once and args.interval == 0.5

    def test_changes_is_required(self):
        with pytest.raises(SystemExit):
            build_apply_batch_parser().parse_args(["emp.csv"])


class TestApplyBatch:
    def test_applies_and_reports(self, emp_csv, changes_json, capsys):
        code = main(
            [
                "apply-batch",
                str(emp_csv),
                "--changes",
                str(changes_json),
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 0" in out and "batch 1" in out
        assert "applied 2 batch(es)" in out
        assert "constraint violation" in out  # the d1 -> SF flip
        assert "minimal FDs" in out

    def test_writes_ddl_migration_and_out_dir(
        self, emp_csv, changes_json, tmp_path, capsys
    ):
        ddl = tmp_path / "schema.sql"
        migration = tmp_path / "migration.sql"
        out_dir = tmp_path / "out"
        code = main(
            [
                "apply-batch",
                str(emp_csv),
                "--changes",
                str(changes_json),
                "--ddl",
                str(ddl),
                "--migration",
                str(migration),
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        assert "CREATE TABLE" in ddl.read_text()
        migration_sql = migration.read_text()
        assert "-- batch" in migration_sql or "No schema changes" in migration_sql
        assert list(out_dir.glob("*.csv"))

    def test_journal_and_resume(self, emp_csv, changes_json, tmp_path, capsys):
        journal = tmp_path / "journal.json"
        assert (
            main(
                [
                    "apply-batch",
                    str(emp_csv),
                    "--changes",
                    str(changes_json),
                    "--journal",
                    str(journal),
                ]
            )
            == 0
        )
        assert journal.exists()
        capsys.readouterr()
        code = main(
            [
                "apply-batch",
                str(emp_csv),
                "--changes",
                str(changes_json),
                "--journal",
                str(journal),
                "--resume",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "2 batch(es) already applied" in out

    def test_bad_changelog_exits_2(self, emp_csv, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"bogus": 1}')
        assert (
            main(["apply-batch", str(emp_csv), "--changes", str(bad)]) == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_resume_without_journal_exits_2(
        self, emp_csv, changes_json, capsys
    ):
        code = main(
            [
                "apply-batch",
                str(emp_csv),
                "--changes",
                str(changes_json),
                "--resume",
            ]
        )
        assert code == 2

    def test_corrupt_journal_exits_4(
        self, emp_csv, changes_json, tmp_path, capsys
    ):
        journal = tmp_path / "journal.json"
        journal.write_text(
            json.dumps(
                {
                    "format": "repro/incremental-journal",
                    "version": 1,
                    "config": {},
                    "applied_batches": 0,
                    "relations": [],
                }
            )
        )
        code = main(
            [
                "apply-batch",
                str(emp_csv),
                "--changes",
                str(changes_json),
                "--journal",
                str(journal),
                "--resume",
            ]
        )
        assert code == 4


class TestWatch:
    def test_once_drains_jsonl(self, emp_csv, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        stream.write_text(
            '{"relation": "emp", "inserts": [["e6", "d3", "HR", "NY"]], '
            '"deletes": []}\n'
        )
        code = main(
            [
                "watch",
                str(emp_csv),
                "--changes",
                str(stream),
                "--once",
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied 1 batch(es)" in out
