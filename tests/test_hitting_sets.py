"""Unit and property tests for minimal hitting set enumeration."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.hitting_sets import minimal_hitting_sets
from repro.model.attributes import full_mask


def reference_minimal_hitting_sets(sets, universe):
    """Exponential-but-obvious reference: scan all subsets by size."""
    restricted = [s & universe for s in sets]
    if any(s == 0 for s in restricted):
        return []
    if not restricted:
        return [0]
    width = universe.bit_length()
    hitting = []
    for subset in range(1 << width):
        if subset & ~universe:
            continue
        if all(subset & s for s in restricted):
            hitting.append(subset)
    minimal = [
        h for h in hitting
        if not any(o != h and o & ~h == 0 for o in hitting)
    ]
    return sorted(minimal)


class TestBasics:
    def test_empty_collection(self):
        assert minimal_hitting_sets([], 0b111) == [0]

    def test_unhittable_set(self):
        assert minimal_hitting_sets([0b1000], 0b111) == []

    def test_single_set(self):
        assert minimal_hitting_sets([0b101], 0b111) == [0b001, 0b100]

    def test_two_disjoint_sets(self):
        result = minimal_hitting_sets([0b001, 0b110], 0b111)
        assert result == [0b011, 0b101]

    def test_superset_inputs_collapse(self):
        # {A} and {A,B}: hitting {A} suffices.
        assert minimal_hitting_sets([0b01, 0b11], 0b11) == [0b01]

    def test_universe_restriction(self):
        # Attribute 0 is outside the universe.
        assert minimal_hitting_sets([0b011], 0b110) == [0b010]

    def test_classic_triangle(self):
        sets = [0b011, 0b101, 0b110]
        assert minimal_hitting_sets(sets, 0b111) == [0b011, 0b101, 0b110]


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**7 - 1), max_size=8),
        st.integers(min_value=0, max_value=2**7 - 1),
    )
    def test_matches_reference(self, sets, universe):
        got = minimal_hitting_sets(sets, universe)
        expected = reference_minimal_hitting_sets(sets, universe)
        assert sorted(got) == expected

    @given(st.lists(st.integers(min_value=1, max_value=2**9 - 1), max_size=10))
    def test_results_hit_everything_and_are_minimal(self, sets):
        universe = full_mask(9)
        results = minimal_hitting_sets(sets, universe)
        for hs in results:
            assert all(hs & s for s in sets)
            # every attribute is critical
            for attr in range(9):
                bit = 1 << attr
                if hs & bit:
                    smaller = hs & ~bit
                    assert not all(smaller & s for s in sets)

    @given(st.lists(st.integers(min_value=1, max_value=2**8 - 1), max_size=8))
    def test_results_are_an_antichain(self, sets):
        results = minimal_hitting_sets(sets, full_mask(8))
        for a, b in itertools.combinations(results, 2):
            assert a & ~b and b & ~a
