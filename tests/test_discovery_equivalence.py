"""Cross-algorithm equivalence: TANE, DFD, and HyFD against the oracle.

These are the central correctness tests of the discovery layer: all
four algorithms must produce the *identical* complete set of minimal
FDs on arbitrary instances, under both NULL semantics and with LHS-size
pruning.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.dfd import DFD
from repro.discovery.hyfd import HyFD
from repro.discovery.tane import Tane
from repro.io.datasets import address_example, planets_example
from tests.helpers import canon_fds

ALGORITHMS = [Tane, DFD, HyFD]

instance_params = st.tuples(
    st.integers(min_value=0, max_value=1_000_000),  # seed
    st.integers(min_value=1, max_value=6),  # columns
    st.integers(min_value=0, max_value=22),  # rows
    st.sampled_from([1, 2, 3, 5]),  # domain
    st.sampled_from([0.0, 0.0, 0.3]),  # null rate
)


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
class TestEquivalence:
    @given(params=instance_params)
    @settings(max_examples=25)
    def test_matches_oracle(self, algorithm_cls, params):
        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        expected = canon_fds(BruteForceFD().discover(instance))
        got = canon_fds(algorithm_cls().discover(instance))
        assert got == expected

    @given(params=instance_params)
    @settings(max_examples=15)
    def test_matches_oracle_null_not_equal(self, algorithm_cls, params):
        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        expected = canon_fds(
            BruteForceFD(null_equals_null=False).discover(instance)
        )
        got = canon_fds(
            algorithm_cls(null_equals_null=False).discover(instance)
        )
        assert got == expected

    @given(
        params=instance_params,
        max_lhs=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=15)
    def test_max_lhs_pruning(self, algorithm_cls, params, max_lhs):
        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        expected = {
            (lhs, attr)
            for lhs, attr in canon_fds(BruteForceFD().discover(instance))
            if lhs.bit_count() <= max_lhs
        }
        got = canon_fds(algorithm_cls(max_lhs_size=max_lhs).discover(instance))
        assert got == expected

    def test_address_example(self, algorithm_cls):
        expected = canon_fds(BruteForceFD().discover(address_example()))
        got = canon_fds(algorithm_cls().discover(address_example()))
        assert got == expected
        assert len(got) == 12

    def test_planets_example_finds_atmosphere_rings(self, algorithm_cls):
        planets = planets_example()
        fds = algorithm_cls().discover(planets)
        atmosphere = planets.relation.mask_of(["Atmosphere"])
        rings = planets.relation.mask_of(["Rings"])
        assert fds.rhs_of(atmosphere) & rings == rings

    def test_zero_rows(self, algorithm_cls):
        instance = random_instance(0, 4, 0)
        got = canon_fds(algorithm_cls().discover(instance))
        assert got == {(0, attr) for attr in range(4)}

    def test_one_row(self, algorithm_cls):
        instance = random_instance(0, 3, 1)
        got = canon_fds(algorithm_cls().discover(instance))
        assert got == {(0, attr) for attr in range(3)}

    def test_result_is_minimal_fdset(self, algorithm_cls):
        instance = random_instance(9, 5, 18, domain_size=2)
        fds = algorithm_cls().discover(instance)
        assert fds.is_minimal()


class _ListStrippedPartition:
    """The pre-CSR list-of-lists stripped partition (reference copy).

    Kept verbatim from the historical implementation so the CSR engine
    can be cross-checked against it on randomized instances.
    """

    def __init__(self, clusters, num_rows):
        self.clusters = [list(c) for c in clusters if len(c) > 1]
        self.num_rows = num_rows

    @classmethod
    def from_column(cls, values, null_equals_null=True):
        groups = {}
        null_group = []
        for row, value in enumerate(values):
            if value is None:
                if null_equals_null:
                    null_group.append(row)
            else:
                groups.setdefault(value, []).append(row)
        clusters = [cluster for cluster in groups.values() if len(cluster) > 1]
        if len(null_group) > 1:
            clusters.append(null_group)
        return cls(clusters, len(values))

    def as_probe(self):
        probe = [-1] * self.num_rows
        for cluster_id, cluster in enumerate(self.clusters):
            for row in cluster:
                probe[row] = cluster_id
        return probe

    def intersect(self, other):
        probe = other.as_probe()
        new_clusters = []
        for cluster in self.clusters:
            sub = {}
            for row in cluster:
                other_id = probe[row]
                if other_id >= 0:
                    sub.setdefault(other_id, []).append(row)
            for rows in sub.values():
                if len(rows) > 1:
                    new_clusters.append(rows)
        return _ListStrippedPartition(new_clusters, self.num_rows)


class TestCSRAgainstListPartition:
    """The CSR partition engine must reproduce the old list-based one."""

    @given(params=instance_params)
    @settings(max_examples=40)
    def test_from_column_identical(self, params):
        from repro.structures.partitions import StrippedPartition

        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        for nen in (True, False):
            for attr in range(cols):
                csr = StrippedPartition.from_column(
                    instance.columns_data[attr], nen
                )
                reference = _ListStrippedPartition.from_column(
                    instance.columns_data[attr], nen
                )
                # identical clusters in identical order (not just as sets)
                assert csr.clusters == reference.clusters
                assert csr.as_probe() == reference.as_probe()

    @given(params=instance_params)
    @settings(max_examples=40)
    def test_intersection_chain_identical(self, params):
        from repro.structures.partitions import StrippedPartition

        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        csr = StrippedPartition.from_column(instance.columns_data[0])
        reference = _ListStrippedPartition.from_column(instance.columns_data[0])
        for attr in range(1, cols):
            csr = csr.intersect(
                StrippedPartition.from_column(instance.columns_data[attr])
            )
            reference = reference.intersect(
                _ListStrippedPartition.from_column(instance.columns_data[attr])
            )
            assert csr.clusters == reference.clusters

    @given(params=instance_params)
    @settings(max_examples=25)
    def test_discovery_identical_on_randomized_instances(self, params):
        """End-to-end: HyFD on the CSR engine equals the brute-force oracle
        (bit-for-bit canonical FD sets) on the same randomized instances
        the partition cross-checks use."""
        seed, cols, rows, domain, null_rate = params
        instance = random_instance(seed, cols, rows, domain, null_rate)
        expected = canon_fds(BruteForceFD().discover(instance))
        assert canon_fds(HyFD().discover(instance)) == expected


class TestDiscoverFrontDoor:
    def test_by_name(self):
        from repro.discovery.base import discover_fds

        instance = random_instance(1, 3, 10, domain_size=2)
        expected = canon_fds(BruteForceFD().discover(instance))
        for name in ("hyfd", "tane", "dfd", "bruteforce"):
            assert canon_fds(discover_fds(instance, name)) == expected

    def test_unknown_name_raises(self):
        from repro.discovery.base import discover_fds

        with pytest.raises(ValueError, match="unknown FD algorithm"):
            discover_fds(random_instance(0, 2, 2), "nope")

    def test_instance_passthrough(self):
        from repro.discovery.base import discover_fds

        instance = random_instance(2, 3, 8, domain_size=2)
        algo = Tane()
        assert canon_fds(discover_fds(instance, algo)) == canon_fds(
            algo.discover(instance)
        )

    def test_invalid_max_lhs_rejected(self):
        with pytest.raises(ValueError):
            HyFD(max_lhs_size=-1)

    def test_invalid_switch_threshold_rejected(self):
        with pytest.raises(ValueError):
            HyFD(switch_threshold=1.5)
