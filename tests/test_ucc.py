"""Tests for UCC (key candidate) discovery: DUCC vs. the naive oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.ucc import DuccUCC, NaiveUCC, discover_uccs
from repro.io.datasets import denormalized_university
from repro.model.attributes import iter_bits


def is_unique_by_definition(instance, mask):
    seen = set()
    columns = [instance.columns_data[i] for i in iter_bits(mask)]
    for row in zip(*columns) if columns else [() for _ in range(instance.num_rows)]:
        if row in seen:
            return False
        seen.add(row)
    return True


class TestNaiveUCC:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=25)
    def test_results_are_unique_and_minimal(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=3)
        for ucc in NaiveUCC().discover(instance):
            assert is_unique_by_definition(instance, ucc)
            for attr in iter_bits(ucc):
                assert not is_unique_by_definition(instance, ucc & ~(1 << attr))

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=20)
    def test_completeness(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=3)
        found = NaiveUCC().discover(instance)
        for mask in range(1, 1 << cols):
            if is_unique_by_definition(instance, mask):
                assert any(ucc & ~mask == 0 for ucc in found)

    def test_single_row_yields_empty_ucc(self):
        instance = random_instance(0, 3, 1)
        assert NaiveUCC().discover(instance) == [0]

    def test_no_key_possible(self):
        instance = random_instance(0, 2, 0)
        instance.columns_data[0] = [1, 1]
        instance.columns_data[1] = [2, 2]
        assert NaiveUCC().discover(instance) == []


class TestDuccUCC:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=22),
        st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=30)
    def test_matches_naive(self, seed, cols, rows, domain):
        instance = random_instance(seed, cols, rows, domain)
        assert sorted(DuccUCC(seed=seed).discover(instance)) == sorted(
            NaiveUCC().discover(instance)
        )

    def test_null_semantics_respected(self):
        instance = random_instance(0, 1, 0)
        instance.columns_data[0] = [None, None]
        assert DuccUCC(null_equals_null=True).discover(instance) == []
        assert DuccUCC(null_equals_null=False).discover(instance) == [0b1]

    def test_university_join_key(self):
        """The §5 example: {name, label} is a key but no minimal-FD LHS."""
        university = denormalized_university()
        uccs = DuccUCC().discover(university)
        name_label = university.relation.mask_of(["name", "label"])
        assert name_label in uccs


class TestFrontDoor:
    def test_by_name(self):
        instance = random_instance(3, 3, 10)
        assert sorted(discover_uccs(instance, "ducc")) == sorted(
            discover_uccs(instance, "naive")
        )

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown UCC algorithm"):
            discover_uccs(random_instance(0, 2, 2), "nope")
