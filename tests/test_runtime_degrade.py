"""Tests for the degradation ladder and fidelity reporting."""

import pytest

from repro.discovery.hyfd import HyFD
from repro.model.fd import FDSet
from repro.runtime.degrade import (
    FidelityReport,
    RelationFidelity,
    StageAttempt,
    discover_with_ladder,
    sample_instance_rows,
)
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import Budget, Governor
from tests.helpers import canon_fds, fd_holds


class BreachingAlgorithm:
    """A stand-in discoverer that always breaches its budget."""

    null_equals_null = True
    max_lhs_size = None

    def __init__(self, name="hyfd", partial=None, partial_exact=True):
        self.name = name
        self.partial = partial
        self.partial_exact = partial_exact

    def discover(self, instance):
        exc = BudgetExceeded("deadline", stage=self.name)
        if self.partial is not None:
            exc.attach_partial(self.partial, exact=self.partial_exact)
        raise exc


class TestUngoverned:
    def test_plain_discovery_without_governor(self, address):
        fds, fidelity = discover_with_ladder(address, HyFD())
        assert fidelity.exact
        assert fidelity.sound
        assert [a.outcome for a in fidelity.attempts] == ["ok"]
        assert canon_fds(fds) == canon_fds(HyFD().discover(address))


class TestLadderDescent:
    def test_rung_one_success_is_exact(self, address):
        governor = Governor(Budget(deadline_seconds=60.0))
        fds, fidelity = discover_with_ladder(address, HyFD(), governor)
        assert fidelity.fidelity == "exact"
        assert fidelity.sound
        assert fidelity.attempts[0].stage == "hyfd"
        assert fidelity.attempts[0].outcome == "ok"

    def test_primary_breach_falls_to_dfd(self, address):
        governor = Governor(Budget(deadline_seconds=60.0))
        fds, fidelity = discover_with_ladder(
            address, BreachingAlgorithm(), governor
        )
        # DFD is an exact algorithm, so the *result* stays exact even
        # though the run was degraded to a fallback rung.
        assert fidelity.fidelity == "exact"
        assert [a.stage for a in fidelity.attempts] == ["hyfd", "dfd"]
        assert [a.outcome for a in fidelity.attempts] == ["breach", "ok"]
        assert canon_fds(fds) == canon_fds(HyFD().discover(address))

    def test_dfd_primary_skips_duplicate_rung(self, address):
        governor = Governor(Budget(deadline_seconds=60.0))
        fds, fidelity = discover_with_ladder(
            address, BreachingAlgorithm(name="dfd"), governor, sample_rows=1024
        )
        stages = [a.stage for a in fidelity.attempts]
        assert stages == ["dfd", "sampled"]

    def test_sampled_rung_verifies_against_full_relation(self, address):
        governor = Governor(Budget(deadline_seconds=60.0))
        fds, fidelity = discover_with_ladder(
            address,
            BreachingAlgorithm(name="dfd"),
            governor,
            sample_rows=4,  # address has 6 rows: forces real sampling
        )
        assert fidelity.fidelity == "sampled"
        assert fidelity.sampled_rows == 4
        assert fidelity.sound  # approx_error=0: only exact holds survive
        for lhs, rhs_attr in canon_fds(fds):
            assert fd_holds(address, lhs, 1 << rhs_attr)

    def test_all_rungs_breach_returns_best_partial(self, address):
        partial = FDSet(address.arity)
        partial.add_masks(0b00001, 0b00010)
        governor = Governor(Budget(max_candidates=1, check_interval=1))
        # The fake primary breaches with an exact partial; the real DFD
        # and sampled rungs then breach on the shared candidate cap.
        fds, fidelity = discover_with_ladder(
            address,
            BreachingAlgorithm(partial=partial, partial_exact=True),
            governor,
        )
        assert fidelity.fidelity in ("partial", "none")
        if fidelity.fidelity == "partial":
            assert len(fds) >= 1

    def test_inexact_partial_marks_unsound(self, address):
        partial = FDSet(address.arity)
        partial.add_masks(0b00001, 0b00010)
        governor = Governor(Budget(max_candidates=1, check_interval=1))
        fds, fidelity = discover_with_ladder(
            address,
            BreachingAlgorithm(partial=partial, partial_exact=False),
            governor,
        )
        if fidelity.fidelity == "partial" and not fidelity.sound:
            assert fidelity.notes  # warns about unvalidated candidates

    def test_degrade_false_propagates_breach(self, address):
        governor = Governor(Budget(deadline_seconds=60.0))
        with pytest.raises(BudgetExceeded):
            discover_with_ladder(
                address, BreachingAlgorithm(), governor, degrade=False
            )


class TestSampling:
    def test_sampling_is_deterministic(self, university):
        first, n1 = sample_instance_rows(university, 4, seed=7)
        second, n2 = sample_instance_rows(university, 4, seed=7)
        assert n1 == n2 == 4
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_small_instance_returned_verbatim(self, address):
        sample, n = sample_instance_rows(address, 100, seed=7)
        assert sample is address
        assert n == address.num_rows


class TestFidelitySerialization:
    def make_report(self):
        fidelity = RelationFidelity(
            relation="r",
            fidelity="sampled",
            attempts=[
                StageAttempt("hyfd", "breach", reason="deadline", seconds=1.5),
                StageAttempt("sampled", "ok", seconds=0.5, num_fds=3),
            ],
            sampled_rows=128,
            notes=["note"],
            sound=False,
        )
        return FidelityReport(relations={"r": fidelity}, events=["event"])

    def test_json_round_trip(self):
        report = self.make_report()
        back = FidelityReport.from_json(report.to_json())
        assert back.to_json() == report.to_json()
        assert back.relations["r"].sound is False

    def test_sound_defaults_true_for_old_payloads(self):
        payload = self.make_report().relations["r"].to_json()
        del payload["sound"]
        assert RelationFidelity.from_json(payload).sound is True

    def test_degraded_property(self):
        assert self.make_report().degraded
        clean = FidelityReport(
            relations={"r": RelationFidelity(relation="r")}
        )
        assert not clean.degraded
        clean.events.append("truncated")
        assert clean.degraded

    def test_to_str_mentions_degradation(self):
        text = self.make_report().to_str()
        assert "DEGRADED" in text
        assert "sampled" in text
