"""Unit tests for FD and FDSet."""

import pytest

from repro.model.fd import FD, FDSet


class TestFD:
    def test_disjoint_invariant(self):
        with pytest.raises(ValueError, match="overlap"):
            FD(0b11, 0b110)

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError, match="rhs"):
            FD(0b1, 0)

    def test_empty_lhs_allowed(self):
        fd = FD(0, 0b1)
        assert fd.lhs == 0

    def test_attributes(self):
        assert FD(0b1, 0b110).attributes == 0b111

    def test_decompose(self):
        parts = list(FD(0b1, 0b110).decompose())
        assert parts == [FD(0b1, 0b010), FD(0b1, 0b100)]

    def test_to_str(self):
        fd = FD(0b100, 0b011)
        assert fd.to_str(("City", "Mayor", "Postcode")) == "Postcode -> City,Mayor"

    def test_to_str_empty_lhs(self):
        assert FD(0, 0b1).to_str(("a", "b")) == "{} -> a"

    def test_hashable(self):
        assert len({FD(1, 2), FD(1, 2), FD(1, 4)}) == 2


class TestFDSet:
    def test_aggregates_same_lhs(self):
        fds = FDSet(3, [FD(0b1, 0b10), FD(0b1, 0b100)])
        assert len(fds) == 1
        assert fds.rhs_of(0b1) == 0b110

    def test_count_single_rhs(self):
        fds = FDSet(3, [FD(0b1, 0b110), FD(0b10, 0b100)])
        assert fds.count_single_rhs() == 3

    def test_add_masks_strips_lhs_bits(self):
        fds = FDSet(3)
        fds.add_masks(0b1, 0b11)  # rhs overlaps lhs
        assert fds.rhs_of(0b1) == 0b10

    def test_add_masks_ignores_empty_effective_rhs(self):
        fds = FDSet(2)
        fds.add_masks(0b1, 0b1)
        assert len(fds) == 0

    def test_contains(self):
        fds = FDSet(3, [FD(0b1, 0b110)])
        assert FD(0b1, 0b100) in fds
        assert FD(0b1, 0b110) in fds
        assert FD(0b10, 0b100) not in fds

    def test_iteration_yields_aggregated(self):
        fds = FDSet(3, [FD(0b1, 0b10), FD(0b1, 0b100)])
        assert list(fds) == [FD(0b1, 0b110)]

    def test_copy_is_independent(self):
        fds = FDSet(3, [FD(0b1, 0b10)])
        clone = fds.copy()
        clone.add_masks(0b1, 0b100)
        assert fds.rhs_of(0b1) == 0b10

    def test_average_rhs_size(self):
        fds = FDSet(4, [FD(0b1, 0b110), FD(0b10, 0b100)])
        assert fds.average_rhs_size() == pytest.approx(1.5)

    def test_average_rhs_size_empty(self):
        assert FDSet(3).average_rhs_size() == 0.0

    def test_is_minimal_true(self):
        fds = FDSet(3, [FD(0b1, 0b100), FD(0b10, 0b100)])
        assert fds.is_minimal()

    def test_is_minimal_detects_subsumption(self):
        fds = FDSet(3, [FD(0b1, 0b100), FD(0b11, 0b100)])
        assert not fds.is_minimal()

    def test_is_minimal_different_rhs_ok(self):
        # {A}->C and {A,C}->B do not violate LHS minimality.
        fds = FDSet(3, [FD(0b1, 0b100), FD(0b101, 0b10)])
        assert fds.is_minimal()

    def test_to_strings_sorted(self):
        fds = FDSet(3, [FD(0b100, 0b1), FD(0b1, 0b100)])
        rendered = fds.to_strings(("a", "b", "c"))
        assert rendered == sorted(rendered)
        assert "a -> c" in rendered
