"""Tests for deterministic fault injection and the fault campaign."""

import pytest

from repro.core.normalize import Normalizer
from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.faults import FAULT_MODES, FaultPlan, SimulatedKill
from repro.runtime.governor import Budget, Governor, activate, checkpoint
from repro.verification.faults_campaign import run_fault_campaign


class TestFaultPlan:
    def test_unknown_mode_rejected(self):
        with pytest.raises(InputError):
            FaultPlan(mode="brownout")

    def test_tick_must_be_positive(self):
        with pytest.raises(InputError):
            FaultPlan(at_tick=0)

    def test_from_seed_is_deterministic(self):
        first = FaultPlan.from_seed(17)
        second = FaultPlan.from_seed(17)
        assert (first.mode, first.at_tick) == (second.mode, second.at_tick)
        assert first.mode in FAULT_MODES
        assert 1 <= first.at_tick <= 4096

    def test_fires_exactly_once(self):
        plan = FaultPlan(mode="timeout", at_tick=3)
        governor = Governor(Budget(), fault_plan=plan)
        governor.tick()
        governor.tick()
        with pytest.raises(BudgetExceeded) as exc_info:
            governor.tick("stage-x")
        assert exc_info.value.reason == "fault:timeout"
        assert plan.fired
        assert plan.fired_at_stage == "stage-x"
        for _ in range(100):
            governor.tick()  # already fired: never again

    def test_oom_mode_reason(self):
        plan = FaultPlan(mode="oom", at_tick=1)
        governor = Governor(Budget(), fault_plan=plan)
        with pytest.raises(BudgetExceeded, match="fault:oom"):
            governor.tick()
        assert governor.breach is not None

    def test_stage_filter(self):
        plan = FaultPlan(mode="timeout", at_tick=1, stage="hyfd")
        governor = Governor(Budget(), fault_plan=plan)
        governor.tick("pli")  # wrong stage: held back
        assert not plan.fired
        with pytest.raises(BudgetExceeded):
            governor.tick("hyfd-induct")

    def test_kill_is_not_an_exception(self):
        plan = FaultPlan(mode="kill", at_tick=1)
        governor = Governor(Budget(), fault_plan=plan)
        with pytest.raises(SimulatedKill):
            try:
                with activate(governor):
                    checkpoint("anywhere")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedKill must not be catchable as Exception")
        assert plan.fired


class TestBudgetBreachSweep:
    """Inject a synthetic breach at many different checkpoint ticks: the
    governed pipeline must always complete with a fidelity-tagged result,
    never escape with an exception."""

    @pytest.mark.parametrize("at_tick", [1, 3, 10, 30, 100, 300, 1000])
    def test_breach_never_escapes_run(self, university, at_tick):
        import warnings

        plan = FaultPlan(mode="timeout", at_tick=at_tick)
        normalizer = Normalizer(algorithm="hyfd", fault_plan=plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = normalizer.run(university)
        assert result.fidelity is not None
        assert len(result.schema) >= 1
        if plan.fired:
            breach_visible = bool(result.fidelity.events) or any(
                attempt.outcome == "breach"
                for fidelity in result.fidelity.relations.values()
                for attempt in fidelity.attempts
            )
            assert breach_visible


class TestFaultCampaign:
    def test_small_campaign_passes(self):
        report = run_fault_campaign(range(6), num_rows=30, max_columns=6)
        assert report.ok, report.to_str()
        assert len(report.seeds) == 6
        assert report.fired >= 1  # the sweep must actually exercise faults
        assert "all passed" in report.to_str()

    def test_failures_flip_ok(self):
        from repro.verification.faults_campaign import FaultCampaignReport

        report = FaultCampaignReport(seeds=[0], failures=["seed 0: boom"])
        assert not report.ok
        assert "FAIL" in report.to_str()
