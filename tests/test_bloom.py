"""Unit tests for the Bloom filter and its cardinality estimator."""

import pytest

from repro.structures.bloom import BloomFilter


class TestConstruction:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(num_hashes=0)

    def test_with_capacity_validates_fpp(self):
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(100, target_fpp=1.5)

    def test_with_capacity_sizes_up(self):
        small = BloomFilter.with_capacity(10)
        large = BloomFilter.with_capacity(10_000)
        assert large.num_bits > small.num_bits


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter.with_capacity(200)
        items = [f"item-{i}" for i in range(200)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter()
        assert "whatever" not in bloom

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.with_capacity(500, target_fpp=0.01)
        for i in range(500):
            bloom.add(("present", i))
        false_positives = sum(
            ("absent", i) in bloom for i in range(2000)
        )
        assert false_positives / 2000 < 0.05

    def test_num_added_counts_calls(self):
        bloom = BloomFilter()
        bloom.add("x")
        bloom.add("x")
        assert bloom.num_added == 2


class TestCardinalityEstimation:
    def test_empty_estimates_zero(self):
        assert BloomFilter().estimated_cardinality() == pytest.approx(0.0)

    def test_estimate_tracks_distinct_not_total(self):
        bloom = BloomFilter.with_capacity(1000)
        for _ in range(5):
            for i in range(100):
                bloom.add(i)
        estimate = bloom.estimated_cardinality()
        assert 70 <= estimate <= 130

    @pytest.mark.parametrize("distinct", [10, 100, 400])
    def test_estimate_within_20_percent(self, distinct):
        bloom = BloomFilter.with_capacity(500)
        for i in range(distinct):
            bloom.add(f"v{i}")
        estimate = bloom.estimated_cardinality()
        assert abs(estimate - distinct) / distinct < 0.2

    def test_saturated_filter_returns_finite(self):
        bloom = BloomFilter(num_bits=64, num_hashes=1)
        for i in range(10_000):
            bloom.add(i)
        estimate = bloom.estimated_cardinality()
        assert estimate > 0
        assert estimate != float("inf")

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter.with_capacity(100)
        previous = bloom.fill_ratio()
        for i in range(50):
            bloom.add(i)
            current = bloom.fill_ratio()
            assert current >= previous
            previous = current

    def test_false_positive_probability_grows(self):
        bloom = BloomFilter(num_bits=256, num_hashes=2)
        assert bloom.false_positive_probability() == 0.0
        for i in range(100):
            bloom.add(i)
        assert bloom.false_positive_probability() > 0.0
