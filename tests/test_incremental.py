"""Tests for the dynamic-data constraint monitor extension."""

import pytest

from repro.core.normalize import normalize
from repro.extensions.incremental import ConstraintMonitor


@pytest.fixture()
def monitor(address):
    result = normalize(address, algorithm="bruteforce")
    return ConstraintMonitor(result), result


def _relation_by_columns(result, columns):
    for name, instance in result.instances.items():
        if set(instance.columns) == set(columns):
            return name, instance
    raise AssertionError(f"no relation with columns {columns}")


class TestCheckInsert:
    def test_clean_insert(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        violations = mon.check_insert(name, [("10115", "Berlin", "Giffey")])
        assert violations == []

    def test_duplicate_primary_key(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        violations = mon.check_insert(name, [("14482", "Potsdam2", "X")])
        assert len(violations) == 1
        assert violations[0].kind == "primary-key"

    def test_duplicate_within_batch(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        rows = [("99999", "A", "B"), ("99999", "C", "D")]
        violations = mon.check_insert(name, rows)
        assert any(v.kind == "primary-key" for v in violations)

    def test_null_in_key(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        violations = mon.check_insert(name, [(None, "A", "B")])
        assert violations[0].kind == "null-key"

    def test_dangling_foreign_key(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"First", "Last", "Postcode"})
        violations = mon.check_insert(name, [("New", "Person", "00000")])
        assert any(v.kind == "foreign-key" for v in violations)

    def test_valid_foreign_key(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"First", "Last", "Postcode"})
        violations = mon.check_insert(name, [("New", "Person", "14482")])
        assert violations == []

    def test_unknown_relation(self, monitor):
        mon, _ = monitor
        with pytest.raises(KeyError):
            mon.check_insert("nope", [])

    def test_wrong_width(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        with pytest.raises(ValueError, match="width"):
            mon.check_insert(name, [("x",)])


class TestApply:
    def test_apply_inserts(self, monitor):
        mon, result = monitor
        name, instance = _relation_by_columns(
            result, {"Postcode", "City", "Mayor"}
        )
        before = instance.num_rows
        mon.apply(name, [("10115", "Berlin", "Giffey")])
        assert instance.num_rows == before + 1
        # the new key now blocks duplicates
        violations = mon.check_insert(name, [("10115", "X", "Y")])
        assert violations and violations[0].kind == "primary-key"

    def test_apply_refuses_violations(self, monitor):
        mon, result = monitor
        name, _ = _relation_by_columns(result, {"Postcode", "City", "Mayor"})
        with pytest.raises(ValueError, match="refusing"):
            mon.apply(name, [("14482", "Potsdam2", "X")])


class TestUniversalRouting:
    def test_consistent_row_routes_cleanly(self, monitor):
        mon, _ = monitor
        # an entirely new person in an existing city: consistent
        row = ("Nora", "Klein", "14482", "Potsdam", "Jakobs")
        assert mon.route_universal_row("address", row) == []

    def test_fd_violation_detected(self, monitor):
        mon, _ = monitor
        # 14482 now claims a different mayor -> the discovered FD
        # Postcode -> Mayor no longer holds for the new data.
        row = ("Nora", "Klein", "14482", "Potsdam", "Schmidt")
        violations = mon.route_universal_row("address", row)
        assert len(violations) == 1
        assert violations[0].kind == "functional-dependency"

    def test_apply_routes_into_all_relations(self, monitor):
        mon, result = monitor
        row = ("Nora", "Klein", "10115", "Berlin", "Giffey")
        assert mon.route_universal_row("address", row, apply=True) == []
        people = _relation_by_columns(result, {"First", "Last", "Postcode"})[1]
        cities = _relation_by_columns(result, {"Postcode", "City", "Mayor"})[1]
        assert ("Nora", "Klein", "10115") in set(people.iter_rows())
        assert ("10115", "Berlin", "Giffey") in set(cities.iter_rows())

    def test_existing_dimension_row_not_duplicated(self, monitor):
        mon, result = monitor
        cities = _relation_by_columns(result, {"Postcode", "City", "Mayor"})[1]
        before = cities.num_rows
        row = ("Nora", "Klein", "14482", "Potsdam", "Jakobs")
        mon.route_universal_row("address", row, apply=True)
        assert cities.num_rows == before  # 14482 already present

    def test_unknown_original(self, monitor):
        mon, _ = monitor
        with pytest.raises(KeyError):
            mon.route_universal_row("nope", ())

    def test_wrong_width(self, monitor):
        mon, _ = monitor
        with pytest.raises(ValueError, match="width"):
            mon.route_universal_row("address", ("x",))

    def test_violating_row_not_applied(self, monitor):
        mon, result = monitor
        cities = _relation_by_columns(result, {"Postcode", "City", "Mayor"})[1]
        before = cities.num_rows
        row = ("Nora", "Klein", "14482", "Potsdam", "Schmidt")
        violations = mon.route_universal_row("address", row, apply=True)
        assert violations
        assert cities.num_rows == before


class TestMultiOriginalRouting:
    def test_rows_route_only_to_own_fragments(self, address):
        from repro.io.datasets import denormalized_university

        university = denormalized_university()
        result = normalize([address, university], algorithm="bruteforce")
        monitor = ConstraintMonitor(result)
        # a new address row must not touch university fragments
        row = ("Nora", "Klein", "10115", "Berlin", "Giffey")
        assert monitor.route_universal_row("address", row, apply=True) == []
        for name, instance in result.instances.items():
            if "name" in instance.columns:  # a university fragment
                assert "Nora" not in {
                    v for col in instance.columns_data for v in col
                }

    def test_university_row_routes(self, address):
        from repro.io.datasets import denormalized_university

        university = denormalized_university()
        result = normalize([address, university], algorithm="bruteforce")
        monitor = ConstraintMonitor(result)
        row = ("Lovelace", "INF9", "Informatics", "90000", "H9", "Fri")
        assert monitor.route_universal_row("university", row) == []
