"""CLI-level tests for the governance surface: exit codes, deadlines,
checkpoint/resume, and CSV repair policies."""

import time

import pytest

from repro.cli import (
    EXIT_BUDGET_EXCEEDED,
    EXIT_CHECKPOINT_ERROR,
    EXIT_INPUT_ERROR,
    main,
)
from repro.datagen.random_tables import random_instance
from repro.io.csv_io import write_csv


@pytest.fixture()
def wide_csv(tmp_path):
    """A 20-column instance big enough to make a tight deadline bind."""
    instance = random_instance(7, 20, 400, domain_size=[3] * 20)
    path = tmp_path / "wide.csv"
    write_csv(instance, path)
    return str(path)


@pytest.fixture()
def small_csv(tmp_path):
    path = tmp_path / "small.csv"
    path.write_text(
        "a,b,c\n1,x,p\n2,x,q\n3,y,p\n1,x,p\n", encoding="utf-8"
    )
    return str(path)


class TestExitCodes:
    def test_missing_file_is_input_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "absent.csv")])
        assert code == EXIT_INPUT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_malformed_csv_strict(self, tmp_path, capsys):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n", encoding="utf-8")
        assert main([str(path)]) == EXIT_INPUT_ERROR

    def test_malformed_csv_pad_succeeds(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n2,3\n", encoding="utf-8")
        assert main([str(path), "--csv-errors", "pad"]) == 0

    def test_bad_budget_is_input_error(self, small_csv):
        assert main([small_csv, "--deadline", "soon"]) == EXIT_INPUT_ERROR

    def test_breach_without_degrade_is_exit_3(self, wide_csv, capsys):
        code = main(
            [wide_csv, "--deadline", "50ms", "--no-degrade"]
        )
        assert code == EXIT_BUDGET_EXCEEDED
        assert "budget exceeded" in capsys.readouterr().err

    def test_bad_checkpoint_is_exit_4(self, small_csv, tmp_path, capsys):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_text("{}", encoding="utf-8")
        code = main([small_csv, "--resume", str(bogus)])
        assert code == EXIT_CHECKPOINT_ERROR


class TestDeadlineAcceptance:
    """The issue's acceptance bar: a tight deadline on a wide instance
    returns a fidelity-tagged partial result instead of hanging."""

    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_deadline_returns_degraded_result_in_time(self, wide_csv, capsys):
        deadline = 1.0
        started = time.monotonic()
        code = main([wide_csv, "--deadline", f"{deadline}s"])
        elapsed = time.monotonic() - started
        out = capsys.readouterr().out
        assert code == 0
        # Overhead allowance: rung hand-offs probe every 256 ticks, so a
        # small overshoot is expected — a hang or full run is not.
        assert elapsed < deadline * 5
        assert "fidelity" in out.lower()

    def test_generous_deadline_stays_exact(self, small_csv, capsys):
        assert main([small_csv, "--deadline", "60s"]) == 0
        assert "exact" in capsys.readouterr().out.lower()


class TestCheckpointFlow:
    def test_checkpoint_then_resume_round_trip(self, small_csv, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        assert main([small_csv, "--checkpoint", str(ckpt)]) == 0
        first = capsys.readouterr().out
        assert ckpt.exists()
        assert main([small_csv, "--resume", str(ckpt)]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_resume_missing_file_is_exit_4(self, small_csv, tmp_path):
        code = main(
            [small_csv, "--resume", str(tmp_path / "never.ckpt")]
        )
        assert code == EXIT_CHECKPOINT_ERROR
