"""Tests for the incremental normalization engine (repro.incremental)."""

import json

import pytest

from repro.core.normalize import Normalizer, normalize
from repro.core.selection import AutoDecider
from repro.discovery.base import discover_fds
from repro.discovery.hyucc import HyUCC
from repro.incremental import (
    ChangeBatch,
    ChangeLog,
    IncrementalNormalizer,
    LiveRelation,
    MutableColumnPartition,
    resume_engine,
)
from repro.incremental.cover import IncrementalCover
from repro.incremental.journal import load_journal, save_journal
from repro.io.ddl import schema_to_ddl
from repro.io.serialization import (
    changelog_from_json,
    changelog_to_json,
    load_changelog,
    save_changelog,
)
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import CheckpointError, InputError
from repro.structures.encoding import EncodedRelation
from repro.structures.partitions import StrippedPartition
from repro.verification.incremental import (
    generate_batch_stream,
    run_incremental_differential,
)
from repro.verification.planted import plant_instance


def _instance(name, columns, rows):
    return RelationInstance(
        Relation(name, tuple(columns)),
        [[row[i] for row in rows] for i in range(len(columns))],
    )


@pytest.fixture()
def dept_instance():
    return _instance(
        "emp",
        ("emp", "dept", "dname", "loc"),
        [
            ("e1", "d1", "Sales", "NY"),
            ("e2", "d1", "Sales", "NY"),
            ("e3", "d2", "Eng", "SF"),
            ("e4", "d2", "Eng", "SF"),
            ("e5", "d3", "HR", "NY"),
        ],
    )


def _groups_of(codes):
    """Row-index groups induced by a code array (order-insensitive)."""
    groups = {}
    for row, code in enumerate(codes):
        groups.setdefault(code, []).append(row)
    return sorted(tuple(g) for g in groups.values())


# ----------------------------------------------------------------------
# Change batches and logs
# ----------------------------------------------------------------------
class TestChangeBatch:
    def test_normalizes_and_validates(self):
        batch = ChangeBatch(inserts=[["a", "b"]], deletes=[3, 1], relation="r")
        assert batch.inserts == (("a", "b"),)
        assert batch.deletes == (3, 1)
        assert not batch.is_empty

    def test_rejects_negative_and_duplicate_ids(self):
        with pytest.raises(InputError):
            ChangeBatch(inserts=(), deletes=[-1])
        with pytest.raises(InputError):
            ChangeBatch(inserts=(), deletes=[2, 2])

    def test_json_roundtrip(self):
        batch = ChangeBatch(
            inserts=[("x", None), ("y", "z")], deletes=[0], relation="r"
        )
        again = ChangeBatch.from_json(batch.to_json())
        assert again == batch

    def test_coerce_str_stringifies_scalars_not_nulls(self):
        batch = ChangeBatch.from_json(
            {"inserts": [[1, None, 2.5]], "deletes": []}, coerce_str=True
        )
        assert batch.inserts == (("1", None, "2.5"),)


class TestChangeLog:
    def test_document_roundtrip(self, tmp_path):
        log = ChangeLog(
            [ChangeBatch(inserts=[("a",)], deletes=(), relation="r")]
        )
        path = tmp_path / "log.json"
        save_changelog(log, path)
        again = load_changelog(path)
        assert list(again) == list(log)
        assert changelog_from_json(changelog_to_json(log)).batches == log.batches

    def test_jsonl_and_array_forms(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"inserts": [["a"]], "deletes": []}\n'
            '{"inserts": [], "deletes": [0]}\n'
        )
        log = load_changelog(path)
        assert len(log) == 2 and log[1].deletes == (0,)
        path.write_text('[{"inserts": [["b"]], "deletes": []}]')
        assert len(load_changelog(path)) == 1

    def test_malformed_raises_input_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(InputError):
            load_changelog(path)
        path.write_text("{broken\n")
        with pytest.raises(InputError):
            load_changelog(path)
        with pytest.raises(InputError):
            load_changelog(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Maintained structures
# ----------------------------------------------------------------------
class TestEncodingMaintenance:
    @pytest.mark.parametrize("nen", [True, False])
    def test_extend_matches_fresh_encode(self, nen):
        old = [["a", "b", None, "a"], [1, 1, 2, 2]]
        new = [["b", None, "c"], [2, 3, 1]]
        grown = EncodedRelation.encode([list(c) for c in old], nen)
        grown.extend(new)
        fresh = EncodedRelation.encode(
            [old[i] + new[i] for i in range(2)], nen
        )
        assert grown.num_rows == fresh.num_rows == 7
        assert grown.cardinalities == fresh.cardinalities
        for col in range(2):
            assert _groups_of(grown.codes[col]) == _groups_of(fresh.codes[col])

    @pytest.mark.parametrize("nen", [True, False])
    def test_remove_rows_matches_fresh_encode(self, nen):
        data = [["a", "b", None, "a", "b"], [1, 2, 2, 1, 3]]
        shrunk = EncodedRelation.encode([list(c) for c in data], nen)
        shrunk.remove_rows([1, 3])
        fresh = EncodedRelation.encode(
            [[c[0], c[2], c[4]] for c in data], nen
        )
        assert shrunk.num_rows == 3
        for col in range(2):
            assert _groups_of(shrunk.codes[col]) == _groups_of(fresh.codes[col])

    def test_extend_validates_shape(self):
        encoding = EncodedRelation.encode([["a"], ["b"]], True)
        with pytest.raises(ValueError):
            encoding.extend([["x"]])  # wrong arity
        with pytest.raises(ValueError):
            encoding.extend([["x", "y"], ["z"]])  # ragged

    def test_remove_rows_validates_range(self):
        encoding = EncodedRelation.encode([["a", "b"]], True)
        with pytest.raises(ValueError):
            encoding.remove_rows([5])


class TestMutableColumnPartition:
    def test_appends_match_from_value_ids(self):
        codes = [0, 1, 0, 2, 1, 0]
        partition = MutableColumnPartition()
        partition.append_codes(codes[:4], 0)
        partition.append_codes(codes[4:], 4)
        built = partition.to_stripped(codes, null_code=None)
        oracle = StrippedPartition.from_value_ids(codes, None)
        assert built.clusters == oracle.clusters

    def test_null_cluster_sorts_last(self):
        codes = [5, 0, 5, 1, 1]
        partition = MutableColumnPartition()
        partition.append_codes(codes, 0)
        built = partition.to_stripped(codes, null_code=5)
        oracle = StrippedPartition.from_value_ids(codes, 5)
        assert built.clusters == oracle.clusters

    def test_dirty_rebuild(self):
        partition = MutableColumnPartition()
        partition.append_codes([0, 0, 1], 0)
        partition.mark_dirty()
        partition.append_codes([2], 3)  # ignored while dirty
        partition.rebuild([0, 1, 1])
        built = partition.to_stripped([0, 1, 1], None)
        assert built.clusters == [[1, 2]]


class TestLiveRelation:
    def test_insert_and_delete_bookkeeping(self, dept_instance):
        live = LiveRelation(dept_instance)
        start, ids = live.insert_rows([("e6", "d3", "HR", "NY")])
        assert start == 5 and ids == [5]
        assert live.num_rows == 6
        live.delete_ids([0, 5])
        assert live.num_rows == 4
        assert live.row_ids == [1, 2, 3, 4]
        # ids are never recycled
        _, ids = live.insert_rows([("e7", "d4", "Ops", "LA")])
        assert ids == [6]
        with pytest.raises(InputError):
            live.position_of(0)
        # the caller's instance is never mutated
        assert dept_instance.num_rows == 5

    def test_snapshot_is_independent(self, dept_instance):
        live = LiveRelation(dept_instance)
        snap = live.snapshot_instance()
        live.insert_rows([("e6", "d3", "HR", "NY")])
        assert snap.num_rows == 5


# ----------------------------------------------------------------------
# Cover maintenance against scratch discovery
# ----------------------------------------------------------------------
class TestIncrementalCover:
    @pytest.mark.parametrize("nen", [True, False])
    def test_inserts_track_scratch_hyfd(self, nen):
        base = plant_instance(7, num_columns=4, num_rows=12)
        live = LiveRelation(base.instance, nen)
        cover = IncrementalCover(
            live.arity,
            discover_fds(base.instance, "hyfd", null_equals_null=nen),
            HyUCC(null_equals_null=nen).discover(base.instance),
            nen,
        )
        _, batches = generate_batch_stream(
            7, base.instance, base.key_mask, 4, kind="key-flip"
        )
        for batch in batches:
            if batch.deletes:
                positions = sorted(
                    live.position_of(row_id) for row_id in batch.deletes
                )
                cover.apply_delete(live.encoding, positions)
                live.delete_ids(batch.deletes)
            if batch.inserts:
                start, _ = live.insert_rows(batch.inserts)
                cover.apply_insert(live.encoding, start, live.pli_cache())
            snapshot = live.snapshot_instance()
            scratch = discover_fds(snapshot, "hyfd", null_equals_null=nen)
            assert list(cover.fds().items()) == list(scratch.items())
            assert cover.uccs() == list(
                HyUCC(null_equals_null=nen).discover(snapshot)
            )

    def test_delete_recovers_coarser_cover(self, dept_instance):
        # dept -> dname,loc holds; add a violating row, then delete it:
        # the cover must return exactly to the scratch result both times.
        live = LiveRelation(dept_instance)
        cover = IncrementalCover(
            live.arity,
            discover_fds(dept_instance, "hyfd"),
            HyUCC().discover(dept_instance),
            True,
        )
        start, ids = live.insert_rows([("e9", "d1", "Sales", "SF")])
        cover.apply_insert(live.encoding, start, live.pli_cache())
        dirty = live.snapshot_instance()
        assert list(cover.fds().items()) == list(
            discover_fds(dirty, "hyfd").items()
        )
        cover.apply_delete(live.encoding, [live.position_of(ids[0])])
        live.delete_ids(ids)
        clean = live.snapshot_instance()
        assert list(cover.fds().items()) == list(
            discover_fds(clean, "hyfd").items()
        )
        assert cover.uccs() == list(HyUCC().discover(clean))


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class TestIncrementalNormalizer:
    def test_ddl_matches_scratch_after_every_batch(self, dept_instance):
        engine = IncrementalNormalizer(dept_instance)
        batches = [
            ChangeBatch(inserts=[("e6", "d4", "Ops", "LA")], deletes=()),
            ChangeBatch(inserts=[("e7", "d1", "Sales", "SF")], deletes=(1,)),
            ChangeBatch(inserts=(), deletes=(5,)),
        ]
        for batch in batches:
            engine.apply_batch(batch)
            scratch = Normalizer(
                algorithm="hyfd",
                decider=AutoDecider(),
                degrade=False,
            ).run(engine.live("emp").snapshot_instance())
            assert engine.ddl() == schema_to_ddl(
                scratch.schema, scratch.instances
            )

    def test_reports_violations_and_migration(self, dept_instance):
        engine = IncrementalNormalizer(dept_instance)
        # d1 currently maps to (Sales, NY); this row flips the dependents.
        outcome = engine.apply_batch(
            ChangeBatch(inserts=[("e9", "d1", "Sales", "SF")], deletes=())
        )
        assert outcome.inserts_applied == 1
        assert any(
            v.kind == "functional-dependency" for v in outcome.violations
        )
        assert outcome.delta.changed
        assert outcome.schema_changed
        sql = outcome.migration.to_sql()
        assert "CREATE TABLE" in sql and "INSERT INTO" in sql
        text = outcome.to_str()
        assert "constraint violation" in text and "fidelity: exact" in text

    def test_empty_batch_is_a_noop(self, dept_instance):
        engine = IncrementalNormalizer(dept_instance)
        before = engine.ddl()
        outcome = engine.apply_batch(ChangeBatch(inserts=(), deletes=()))
        assert not outcome.delta.changed
        assert not outcome.schema_changed
        assert engine.ddl() == before

    def test_unknown_relation_and_unknown_id(self, dept_instance):
        engine = IncrementalNormalizer(dept_instance)
        with pytest.raises(InputError):
            engine.apply_batch(
                ChangeBatch(inserts=(), deletes=(), relation="nope")
            )
        with pytest.raises(InputError):
            engine.apply_batch(ChangeBatch(inserts=(), deletes=(99,)))

    def test_multi_relation_requires_name(self, dept_instance):
        other = _instance("proj", ("p", "q"), [("1", "x"), ("2", "y")])
        engine = IncrementalNormalizer([dept_instance, other])
        with pytest.raises(InputError):
            engine.apply_batch(ChangeBatch(inserts=[("3", "z")], deletes=()))
        outcome = engine.apply_batch(
            ChangeBatch(inserts=[("3", "z")], deletes=(), relation="proj")
        )
        assert outcome.relation == "proj"
        assert engine.live("proj").num_rows == 3

    def test_closure_cache_stays_correct_across_refreshes(self, dept_instance):
        engine = IncrementalNormalizer(dept_instance)
        assert engine._closure_cache  # the initial run populated it
        engine.apply_batch(ChangeBatch(inserts=(), deletes=()))
        scratch = normalize(
            engine.live("emp").snapshot_instance(), algorithm="hyfd"
        )
        assert engine.schema.to_str() == scratch.schema.to_str()


# ----------------------------------------------------------------------
# Journal / resume
# ----------------------------------------------------------------------
class TestJournal:
    def _stream(self, dept_instance):
        return [
            ChangeBatch(inserts=[("e6", "d4", "Ops", "LA")], deletes=()),
            ChangeBatch(inserts=[("e7", "d1", "Sales", "SF")], deletes=(0,)),
            ChangeBatch(inserts=(), deletes=(2, 5)),
        ]

    def test_resume_matches_uninterrupted_run(self, dept_instance, tmp_path):
        journal = tmp_path / "journal.json"
        batches = self._stream(dept_instance)
        engine = IncrementalNormalizer(dept_instance, journal_path=journal)
        engine.apply_batch(batches[0])
        engine.apply_batch(batches[1])
        # "crash": rebuild from the journal and the same change log.
        resumed = resume_engine([dept_instance], batches, journal)
        assert resumed.applied_batches == 2
        assert resumed.ddl() == engine.ddl()
        assert list(resumed.fd_cover("emp").items()) == list(
            engine.fd_cover("emp").items()
        )
        resumed.apply_batch(batches[2])
        engine.apply_batch(batches[2])
        assert resumed.ddl() == engine.ddl()
        assert resumed.live("emp").row_ids == engine.live("emp").row_ids

    def test_save_load_roundtrip(self, dept_instance, tmp_path):
        journal = tmp_path / "journal.json"
        engine = IncrementalNormalizer(dept_instance)
        save_journal(engine, journal)
        state = load_journal(journal)
        assert state["applied_batches"] == 0
        assert state["relations"][0]["name"] == "emp"

    def test_rejects_modified_changelog(self, dept_instance, tmp_path):
        journal = tmp_path / "journal.json"
        batches = self._stream(dept_instance)
        engine = IncrementalNormalizer(dept_instance, journal_path=journal)
        engine.apply_batch(batches[0])
        tampered = [
            ChangeBatch(inserts=[("eX", "d9", "Z", "Z")], deletes=(0,))
        ] + batches[1:]
        with pytest.raises(CheckpointError):
            resume_engine([dept_instance], tampered, journal)

    def test_rejects_config_mismatch(self, dept_instance, tmp_path):
        journal = tmp_path / "journal.json"
        engine = IncrementalNormalizer(dept_instance, journal_path=journal)
        engine.apply_batch(ChangeBatch(inserts=(), deletes=()))
        with pytest.raises(CheckpointError):
            resume_engine(
                [dept_instance],
                [ChangeBatch(inserts=(), deletes=())],
                journal,
                target="3nf",
            )

    def test_rejects_malformed_journal(self, dept_instance, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(json.dumps({"format": "other"}))
        with pytest.raises(CheckpointError):
            resume_engine([dept_instance], [], journal)
        journal.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_journal(journal)


# ----------------------------------------------------------------------
# Satellite: the old extension import path must keep working
# ----------------------------------------------------------------------
class TestExtensionShim:
    def test_reexports_are_the_same_objects(self):
        from repro.extensions import incremental as shim
        from repro.incremental import monitor

        assert shim.ConstraintMonitor is monitor.ConstraintMonitor
        assert shim.ConstraintViolation is monitor.ConstraintViolation


# ----------------------------------------------------------------------
# Seeded differential campaign (small slice inline; the full matrix is
# `repro verify --incremental` / `make fuzz-incremental`)
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeds_hold_the_byte_identical_bar(self, seed):
        assert run_incremental_differential(seed, num_batches=4) == []

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", range(10))
    def test_fuzz_campaign_slice(self, seed):
        mismatches = run_incremental_differential(seed, num_batches=8)
        assert mismatches == [], "\n".join(
            m.describe() for m in mismatches
        )
