"""Semantic tests for the brute-force (FDep-style) discoverer.

BruteForceFD is the oracle for the other discoverers, so it is itself
tested directly against the FD *definition* (pairwise record checks).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD, distinct_agree_sets
from repro.io.datasets import address_example
from repro.model.attributes import full_mask
from tests.helpers import canon_fds, fd_holds, is_minimal_fd


class TestAgreeSets:
    def test_identical_rows_produce_no_agree_set(self):
        instance = random_instance(0, 3, 0)
        instance.columns_data[0] = [1, 1]
        instance.columns_data[1] = [2, 2]
        instance.columns_data[2] = [3, 3]
        assert distinct_agree_sets(instance) == []

    def test_agree_set_of_partial_match(self):
        instance = random_instance(0, 3, 0)
        instance.columns_data[0] = [1, 1]
        instance.columns_data[1] = [2, 9]
        instance.columns_data[2] = [3, 3]
        assert distinct_agree_sets(instance) == [0b101]

    def test_null_semantics(self):
        instance = random_instance(0, 2, 0)
        instance.columns_data[0] = [None, None]
        instance.columns_data[1] = [1, 2]
        assert distinct_agree_sets(instance, null_equals_null=True) == [0b01]
        assert distinct_agree_sets(instance, null_equals_null=False) == [0]


class TestKnownResults:
    def test_address_example_contains_paper_fds(self, address):
        fds = BruteForceFD().discover(address)
        postcode = address.relation.mask_of(["Postcode"])
        city_mayor = address.relation.mask_of(["City", "Mayor"])
        assert fds.rhs_of(postcode) & city_mayor == city_mayor

    def test_address_example_counts_twelve_minimal_fds(self):
        # §1: "an FD discovery algorithm would find twelve valid FDs".
        fds = BruteForceFD().discover(address_example())
        assert fds.count_single_rhs() == 12

    def test_single_column_constant(self):
        instance = random_instance(0, 1, 3, domain_size=1)
        fds = BruteForceFD().discover(instance)
        assert canon_fds(fds) == {(0, 0)}

    def test_single_column_non_constant(self):
        instance = random_instance(0, 1, 0)
        instance.columns_data[0] = [1, 2, 2]
        fds = BruteForceFD().discover(instance)
        assert canon_fds(fds) == set()

    def test_empty_table_all_constant_fds(self):
        instance = random_instance(0, 3, 0)
        fds = BruteForceFD().discover(instance)
        assert canon_fds(fds) == {(0, 0), (0, 1), (0, 2)}


class TestSemantics:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([1, 2, 3]),
        st.sampled_from([0.0, 0.25]),
    )
    def test_every_reported_fd_is_valid_and_minimal(
        self, seed, cols, rows, domain, null_rate
    ):
        instance = random_instance(seed, cols, rows, domain, null_rate)
        fds = BruteForceFD().discover(instance)
        for lhs, attr in canon_fds(fds):
            assert is_minimal_fd(instance, lhs, attr)

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=15),
    )
    def test_completeness_every_valid_fd_is_covered(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        found = canon_fds(BruteForceFD().discover(instance))
        universe = full_mask(cols)
        # every valid FD must have a discovered generalization
        for attr in range(cols):
            for lhs in range(1 << cols):
                if lhs & (1 << attr) or lhs & ~universe:
                    continue
                if fd_holds(instance, lhs, 1 << attr):
                    assert any(
                        got_attr == attr and got_lhs & ~lhs == 0
                        for got_lhs, got_attr in found
                    )
