"""Shrinker tests: minimization quality and repro emission."""

import pytest

from repro.datagen.random_tables import random_instance
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.verification.shrinker import shrink_instance, to_pytest_repro


def _has_marker(instance: RelationInstance) -> bool:
    return any(
        value == "MARKER"
        for column in instance.columns_data
        for value in column
    )


class TestShrink:
    def test_single_marker_row_and_column_survive(self):
        instance = RelationInstance(
            Relation("t", ("a", "b", "c", "d")),
            [
                [0, 1, 2, 3, 4, 5],
                [0, 0, "MARKER", 0, 0, 0],
                [9, 9, 9, 9, 9, 9],
                [7, 7, 7, 7, 7, 7],
            ],
        )
        shrunk = shrink_instance(instance, _has_marker)
        assert shrunk.arity == 1
        assert shrunk.num_rows == 1
        assert shrunk.columns == ("b",)
        assert shrunk.columns_data == [["MARKER"]]

    def test_interacting_rows_kept(self):
        # failure needs two distinct values in column a: minimal = 2 rows
        predicate = lambda inst: len(set(inst.column(0))) >= 2  # noqa: E731
        instance = random_instance(3, 3, 20, domain_size=4)
        shrunk = shrink_instance(instance, predicate)
        assert shrunk.num_rows == 2
        assert shrunk.arity == 1

    def test_initial_predicate_must_hold(self):
        instance = random_instance(0, 2, 4)
        with pytest.raises(ValueError, match="does not hold"):
            shrink_instance(instance, lambda inst: False)

    def test_budget_exhaustion_returns_best_so_far(self):
        instance = random_instance(1, 4, 30, domain_size=2)
        shrunk = shrink_instance(
            instance, lambda inst: inst.num_rows >= 1, max_evaluations=5
        )
        # not fully minimal, but valid and no larger than the input
        assert shrunk.num_rows <= instance.num_rows
        assert shrunk.arity <= instance.arity


class TestReproEmission:
    def test_emitted_module_executes(self):
        instance = RelationInstance(
            Relation("shrunk", ("x", "y")), [[1, None], ["a", "b"]]
        )
        source = to_pytest_repro(
            instance,
            "instance.num_rows > 99",  # falsy: the emitted assert passes
            comment="demo repro",
        )
        namespace: dict = {}
        exec(compile(source, "<repro>", "exec"), namespace)
        namespace["test_shrunk_repro"]()  # must not raise

    def test_emitted_module_fails_while_bug_reproduces(self):
        instance = RelationInstance(Relation("shrunk", ("x",)), [[1, 2]])
        source = to_pytest_repro(instance, "instance.num_rows == 2")
        namespace: dict = {}
        exec(compile(source, "<repro>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace["test_shrunk_repro"]()

    def test_repro_contains_instance_literal_and_comment(self):
        instance = RelationInstance(
            Relation("r", ("only",)), [[None, "v"]]
        )
        source = to_pytest_repro(
            instance,
            "False",
            imports=("import math",),
            test_name="test_custom_name",
            comment="seed 7",
        )
        assert "Relation('r', ('only',))" in source
        assert "[None, 'v']" in source
        assert "# seed 7" in source
        assert "import math" in source
        assert "def test_custom_name():" in source
