"""Unit tests for the FD prefix tree (HyFD's positive cover)."""

from repro.structures.fdtree import FDTree


class TestAddRemove:
    def test_add_and_contains(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b0100)
        assert tree.contains_fd(0b0011, 2)
        assert not tree.contains_fd(0b0011, 3)
        assert not tree.contains_fd(0b0001, 2)

    def test_add_aggregates_rhs(self):
        tree = FDTree(4)
        tree.add(0b1, 0b0100)
        tree.add(0b1, 0b1000)
        assert tree.contains_fd(0b1, 2)
        assert tree.contains_fd(0b1, 3)

    def test_add_empty_rhs_is_noop(self):
        tree = FDTree(3)
        tree.add(0b1, 0)
        assert tree.count_fds() == 0

    def test_remove(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b1100)
        tree.remove(0b0011, 0b0100)
        assert not tree.contains_fd(0b0011, 2)
        assert tree.contains_fd(0b0011, 3)

    def test_remove_missing_path_is_noop(self):
        tree = FDTree(4)
        tree.remove(0b0110, 0b0001)  # nothing stored
        assert tree.count_fds() == 0

    def test_root_fd(self):
        tree = FDTree(3)
        tree.add(0, 0b111)
        assert tree.contains_fd(0, 0)
        assert tree.count_fds() == 3


class TestGeneralizationQueries:
    def test_exact_match_counts(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b0100)
        assert tree.contains_fd_or_generalization(0b0011, 2)

    def test_proper_generalization(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)
        assert tree.contains_fd_or_generalization(0b0011, 2)
        assert not tree.contains_fd_or_generalization(0b0010, 2)

    def test_rhs_must_match(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)
        assert not tree.contains_fd_or_generalization(0b0011, 3)

    def test_root_generalizes_everything(self):
        tree = FDTree(3)
        tree.add(0, 0b100)
        assert tree.contains_fd_or_generalization(0b011, 2)


class TestCollectViolated:
    def test_basic_violation(self):
        tree = FDTree(3)
        # {A} -> C ; a pair agreeing exactly on {A, B} disagrees on C.
        tree.add(0b001, 0b100)
        violated = tree.collect_violated(0b011)
        assert violated == [(0b001, 0b100)]

    def test_lhs_outside_agree_set_not_violated(self):
        tree = FDTree(3)
        tree.add(0b010, 0b100)  # {B} -> C
        assert tree.collect_violated(0b001) == []

    def test_rhs_inside_agree_set_not_violated(self):
        tree = FDTree(3)
        tree.add(0b001, 0b100)  # {A} -> C
        assert tree.collect_violated(0b101) == []

    def test_multiple_hits(self):
        tree = FDTree(4)
        tree.add(0, 0b1000)
        tree.add(0b0001, 0b0100)
        violated = dict(tree.collect_violated(0b0011))
        assert violated == {0: 0b1000, 0b0001: 0b0100}


class TestIteration:
    def test_iter_level(self):
        tree = FDTree(4)
        tree.add(0, 0b1000)
        tree.add(0b0001, 0b0100)
        tree.add(0b0011, 0b1000)
        assert list(tree.iter_level(0)) == [(0, 0b1000)]
        assert list(tree.iter_level(1)) == [(0b0001, 0b0100)]
        assert list(tree.iter_level(2)) == [(0b0011, 0b1000)]

    def test_iter_all_and_count(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b1100)
        tree.add(0b0010, 0b0001)
        assert dict(tree.iter_all()) == {0b0001: 0b1100, 0b0010: 0b0001}
        assert tree.count_fds() == 3

    def test_depth(self):
        tree = FDTree(5)
        assert tree.depth() == 0
        tree.add(0b10101, 0b01000)
        assert tree.depth() == 3

    def test_removed_fds_not_iterated(self):
        tree = FDTree(3)
        tree.add(0b001, 0b110)
        tree.remove(0b001, 0b110)
        assert list(tree.iter_all()) == []
