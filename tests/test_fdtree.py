"""Unit tests for the FD prefix tree (HyFD's positive cover).

Every test runs under both engines (the level-indexed lattice and the
recursive legacy trie) via the autouse fixture; the deeper
cross-engine equivalence lives in ``test_fdtree_differential.py``.
"""

import pytest

from repro.structures import fdtree
from repro.structures.fdtree import FDTree


@pytest.fixture(autouse=True, params=["level", "legacy"])
def engine(request):
    fdtree.set_engine(request.param)
    yield request.param
    fdtree.set_engine(None)


class TestAddRemove:
    def test_add_and_contains(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b0100)
        assert tree.contains_fd(0b0011, 2)
        assert not tree.contains_fd(0b0011, 3)
        assert not tree.contains_fd(0b0001, 2)

    def test_add_aggregates_rhs(self):
        tree = FDTree(4)
        tree.add(0b1, 0b0100)
        tree.add(0b1, 0b1000)
        assert tree.contains_fd(0b1, 2)
        assert tree.contains_fd(0b1, 3)

    def test_add_empty_rhs_is_noop(self):
        tree = FDTree(3)
        tree.add(0b1, 0)
        assert tree.count_fds() == 0

    def test_remove(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b1100)
        tree.remove(0b0011, 0b0100)
        assert not tree.contains_fd(0b0011, 2)
        assert tree.contains_fd(0b0011, 3)

    def test_remove_missing_path_is_noop(self):
        tree = FDTree(4)
        tree.remove(0b0110, 0b0001)  # nothing stored
        assert tree.count_fds() == 0

    def test_root_fd(self):
        tree = FDTree(3)
        tree.add(0, 0b111)
        assert tree.contains_fd(0, 0)
        assert tree.count_fds() == 3


class TestGeneralizationQueries:
    def test_exact_match_counts(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b0100)
        assert tree.contains_fd_or_generalization(0b0011, 2)

    def test_proper_generalization(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)
        assert tree.contains_fd_or_generalization(0b0011, 2)
        assert not tree.contains_fd_or_generalization(0b0010, 2)

    def test_rhs_must_match(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)
        assert not tree.contains_fd_or_generalization(0b0011, 3)

    def test_root_generalizes_everything(self):
        tree = FDTree(3)
        tree.add(0, 0b100)
        assert tree.contains_fd_or_generalization(0b011, 2)


class TestCollectViolated:
    def test_basic_violation(self):
        tree = FDTree(3)
        # {A} -> C ; a pair agreeing exactly on {A, B} disagrees on C.
        tree.add(0b001, 0b100)
        violated = tree.collect_violated(0b011)
        assert violated == [(0b001, 0b100)]

    def test_lhs_outside_agree_set_not_violated(self):
        tree = FDTree(3)
        tree.add(0b010, 0b100)  # {B} -> C
        assert tree.collect_violated(0b001) == []

    def test_rhs_inside_agree_set_not_violated(self):
        tree = FDTree(3)
        tree.add(0b001, 0b100)  # {A} -> C
        assert tree.collect_violated(0b101) == []

    def test_multiple_hits(self):
        tree = FDTree(4)
        tree.add(0, 0b1000)
        tree.add(0b0001, 0b0100)
        violated = dict(tree.collect_violated(0b0011))
        assert violated == {0: 0b1000, 0b0001: 0b0100}


class TestIteration:
    def test_iter_level(self):
        tree = FDTree(4)
        tree.add(0, 0b1000)
        tree.add(0b0001, 0b0100)
        tree.add(0b0011, 0b1000)
        assert list(tree.iter_level(0)) == [(0, 0b1000)]
        assert list(tree.iter_level(1)) == [(0b0001, 0b0100)]
        assert list(tree.iter_level(2)) == [(0b0011, 0b1000)]

    def test_iter_all_and_count(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b1100)
        tree.add(0b0010, 0b0001)
        assert dict(tree.iter_all()) == {0b0001: 0b1100, 0b0010: 0b0001}
        assert tree.count_fds() == 3

    def test_depth(self):
        tree = FDTree(5)
        assert tree.depth() == 0
        tree.add(0b10101, 0b01000)
        assert tree.depth() == 3

    def test_removed_fds_not_iterated(self):
        tree = FDTree(3)
        tree.add(0b001, 0b110)
        tree.remove(0b001, 0b110)
        assert list(tree.iter_all()) == []

    def test_iter_all_is_path_ordered(self):
        tree = FDTree(4)
        tree.add(0b0110, 0b0001)  # {B,C}
        tree.add(0b0010, 0b0001)  # {B}
        tree.add(0b1001, 0b0010)  # {A,D}
        tree.add(0b0001, 0b0010)  # {A}
        # Ascending attribute-path order: a prefix sorts before its
        # extensions, independent of insertion order or level.
        assert [lhs for lhs, _ in tree.iter_all()] == [
            0b0001,  # (0,)
            0b1001,  # (0, 3)
            0b0010,  # (1,)
            0b0110,  # (1, 2)
        ]


class TestBatchEntryPoints:
    def test_contains_generalization_batch(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)
        pairs = [(0b0011, 2), (0b0011, 3), (0b0010, 2)]
        assert tree.contains_generalization_batch(pairs) == [
            True, False, False,
        ]

    def test_collect_violated_batch(self):
        tree = FDTree(3)
        tree.add(0b001, 0b100)
        assert tree.collect_violated_batch([0b011, 0b101]) == [
            [(0b001, 0b100)], [],
        ]

    def test_any_violated_batch(self):
        tree = FDTree(3)
        tree.add(0b001, 0b100)
        assert tree.any_violated_batch([0b011, 0b101, 0b111]) == [
            True, False, False,
        ]

    def test_add_minimal_specializations(self):
        tree = FDTree(4)
        tree.add(0b0001, 0b0100)  # {A} -> C already generalizes {A,D} -> C
        added = tree.add_minimal_specializations(0b1000, 2, 0b0011)
        assert added == [0b1010]  # {B,D} added; {A,D} screened out
        assert tree.contains_fd(0b1010, 2)
        assert not tree.contains_fd(0b1001, 2)

    def test_prune_preserves_content(self):
        tree = FDTree(4)
        tree.add(0b0011, 0b1100)
        tree.add(0b0100, 0b0001)
        tree.remove(0b0011, 0b1100)
        tree.prune()
        assert dict(tree.iter_all()) == {0b0100: 0b0001}
        assert tree.depth() == 1
