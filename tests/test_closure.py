"""Tests for the three closure algorithms (paper §4, Algorithms 1–3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import (
    calculate_closure,
    improved_closure,
    naive_closure,
    optimized_closure,
)
from repro.datagen.random_tables import random_instance
from repro.discovery.bruteforce import BruteForceFD
from repro.model.fd import FD, FDSet
from tests.helpers import semantic_closure_of_set


def fdset(num_attrs, *pairs):
    return FDSet(num_attrs, [FD(lhs, rhs) for lhs, rhs in pairs])


def closure_by_fixpoint(fds: FDSet, lhs: int) -> int:
    """Reference attribute closure via naive fixpoint iteration."""
    closure = lhs
    changed = True
    while changed:
        changed = False
        for other_lhs, other_rhs in fds.items():
            if other_lhs & ~closure == 0 and other_rhs & ~closure:
                closure |= other_rhs
                changed = True
    return closure


class TestPaperExample:
    def test_transitivity_example(self):
        # §2: X={A,B}, F={A->C, C->D} gives X+ = {A,B,C,D}; as an FD set
        # with AB->C implied we use the paper's §4 running FDs.
        fds = fdset(4, (0b0001, 0b0100), (0b0100, 0b1000))  # A->C, C->D
        extended = naive_closure(fds)
        assert extended.rhs_of(0b0001) == 0b1100  # A -> C,D

    def test_postcode_example(self):
        # Postcode->City, City->Mayor  =>  Postcode->City,Mayor.
        # This two-FD set is NOT complete (a complete minimal set on
        # real data would contain more FDs), so only the general
        # algorithms 1 and 2 are applicable here.
        fds = fdset(3, (0b001, 0b010), (0b010, 0b100))
        for algorithm in (naive_closure, improved_closure):
            extended = algorithm(fds.copy())
            assert extended.rhs_of(0b001) == 0b110

    def test_optimized_requires_complete_input(self):
        # On the same non-complete set, Algorithm 3's single LHS-subset
        # pass cannot reach Mayor from Postcode — by design (Lemma 1
        # presumes completeness).  This documents the contract.
        fds = fdset(3, (0b001, 0b010), (0b010, 0b100))
        assert optimized_closure(fds).rhs_of(0b001) == 0b010


class TestEquivalenceOnDiscoveredSets:
    """On complete minimal FD sets all three algorithms must agree."""

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=18),
        st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=25)
    def test_all_three_agree(self, seed, cols, rows, domain):
        instance = random_instance(seed, cols, rows, domain)
        fds = BruteForceFD().discover(instance)
        results = [
            dict(naive_closure(fds.copy()).items()),
            dict(improved_closure(fds.copy()).items()),
            dict(optimized_closure(fds.copy()).items()),
        ]
        assert results[0] == results[1] == results[2]

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=18),
    )
    @settings(max_examples=25)
    def test_extension_matches_semantic_closure(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        fds = BruteForceFD().discover(instance)
        extended = optimized_closure(fds)
        for lhs, rhs in extended.items():
            assert lhs | rhs == semantic_closure_of_set(instance, lhs)

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=18),
    )
    @settings(max_examples=15)
    def test_matches_fixpoint_reference(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        fds = BruteForceFD().discover(instance)
        extended = optimized_closure(fds)
        for lhs, rhs in extended.items():
            assert lhs | rhs == closure_by_fixpoint(fds, lhs)


class TestImprovedOnArbitrarySets:
    """Algorithm 2 must also work on NON-complete FD sets."""

    def test_chain_requiring_multiple_passes(self):
        # A->B, {A,B}->C, {A,C}->D: optimized (subset of LHS only) would
        # miss D for A because {A,B} is not a subset of {A}.
        fds = fdset(4, (0b0001, 0b0010), (0b0011, 0b0100), (0b0101, 0b1000))
        improved = improved_closure(fds.copy())
        assert improved.rhs_of(0b0001) == 0b1110
        naive = naive_closure(fds.copy())
        assert dict(naive.items()) == dict(improved.items())

    def test_improved_equals_naive_on_random_subsets(self):
        import random

        rng = random.Random(4)
        for _ in range(20):
            num_attrs = rng.randint(2, 6)
            pairs = []
            for _ in range(rng.randint(1, 6)):
                lhs = rng.randrange(1, 1 << num_attrs)
                rhs = rng.randrange(1, 1 << num_attrs) & ~lhs
                if rhs:
                    pairs.append((lhs, rhs))
            if not pairs:
                continue
            fds = fdset(num_attrs, *pairs)
            assert dict(naive_closure(fds.copy()).items()) == dict(
                improved_closure(fds.copy()).items()
            )


class TestParallelism:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10)
    def test_parallel_matches_sequential(self, seed):
        instance = random_instance(seed, 5, 15, domain_size=2)
        fds = BruteForceFD().discover(instance)
        sequential = dict(optimized_closure(fds.copy()).items())
        parallel = dict(optimized_closure(fds.copy(), n_workers=4).items())
        assert sequential == parallel
        improved_parallel = dict(improved_closure(fds.copy(), n_workers=4).items())
        assert sequential == improved_parallel


class TestPrunedInput:
    """§4.3: with all FDs above a max LHS size pruned, Algorithm 3 still
    closes the remaining FDs correctly."""

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15)
    def test_closure_correct_on_pruned_sets(self, seed, max_lhs):
        instance = random_instance(seed, 5, 15, domain_size=2)
        full = BruteForceFD().discover(instance)
        pruned = FDSet(5)
        for lhs, rhs in full.items():
            if lhs.bit_count() <= max_lhs:
                pruned.add_masks(lhs, rhs)
        extended = optimized_closure(pruned)
        for lhs, rhs in extended.items():
            assert lhs | rhs == semantic_closure_of_set(instance, lhs)


class TestFrontDoor:
    def test_calculate_closure_dispatch(self):
        fds = fdset(3, (0b001, 0b010), (0b010, 0b100))
        for name in ("naive", "improved"):
            assert calculate_closure(fds.copy(), name).rhs_of(0b001) == 0b110
        # optimized dispatches too; exact extension needs complete input
        assert calculate_closure(fds.copy(), "optimized").rhs_of(0b001) >= 0b010

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown closure algorithm"):
            calculate_closure(fdset(2, (0b1, 0b10)), "quantum")

    def test_input_not_mutated(self):
        fds = fdset(3, (0b001, 0b010), (0b010, 0b100))
        optimized_closure(fds)
        assert fds.rhs_of(0b001) == 0b010
