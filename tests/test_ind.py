"""Tests for IND discovery and foreign-key verification."""

import pytest

from repro.core.normalize import normalize
from repro.discovery.ind import (
    discover_unary_inds,
    ind_holds,
    verify_foreign_keys,
)
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey, Relation


def make(name, columns, rows, **kwargs):
    return RelationInstance.from_rows(
        Relation(name, tuple(columns), **kwargs), rows
    )


class TestIndHolds:
    def test_inclusion(self):
        orders = make("orders", ["cust"], [(1,), (2,), (1,)])
        customers = make("customers", ["id"], [(1,), (2,), (3,)])
        assert ind_holds(orders, ["cust"], customers, ["id"])
        assert not ind_holds(customers, ["id"], orders, ["cust"])

    def test_nulls_exempt(self):
        orders = make("orders", ["cust"], [(1,), (None,)])
        customers = make("customers", ["id"], [(1,)])
        assert ind_holds(orders, ["cust"], customers, ["id"])

    def test_composite(self):
        link = make("link", ["a", "b"], [(1, "x"), (2, "y")])
        target = make("t", ["a", "b"], [(1, "x"), (2, "y"), (3, "z")])
        assert ind_holds(link, ["a", "b"], target, ["a", "b"])
        bad = make("t2", ["a", "b"], [(1, "y"), (2, "x")])
        assert not ind_holds(link, ["a", "b"], bad, ["a", "b"])

    def test_width_mismatch(self):
        left = make("l", ["a"], [(1,)])
        with pytest.raises(ValueError, match="width"):
            ind_holds(left, ["a"], left, ["a", "a"])

    def test_empty_columns_rejected(self):
        left = make("l", ["a"], [(1,)])
        with pytest.raises(ValueError, match="at least one"):
            ind_holds(left, [], left, [])


class TestDiscoverUnaryInds:
    def test_finds_fk_shaped_inds(self):
        orders = make("orders", ["oid", "cust"], [(1, 10), (2, 11)])
        customers = make("customers", ["id", "name"], [(10, "a"), (11, "b"), (12, "c")])
        inds = discover_unary_inds({"orders": orders, "customers": customers})
        rendered = {ind.to_str() for ind in inds}
        assert "orders(cust) <= customers(id)" in rendered

    def test_all_null_columns_skipped(self):
        a = make("a", ["x"], [(None,), (None,)])
        b = make("b", ["y"], [(1,)])
        inds = discover_unary_inds({"a": a, "b": b})
        assert all(ind.dependent_relation != "a" for ind in inds)

    def test_self_inds_off_by_default(self):
        t = make("t", ["x", "y"], [(1, 1)])
        assert discover_unary_inds({"t": t}) == []
        self_inds = discover_unary_inds({"t": t}, allow_self=True)
        assert len(self_inds) == 2  # x <= y and y <= x

    def test_normalized_schema_contains_fk_inds(self, address):
        result = normalize(address, algorithm="bruteforce")
        inds = discover_unary_inds(result.instances)
        fk_pairs = {
            (name, fk.columns[0], fk.ref_relation, fk.ref_columns[0])
            for name, instance in result.instances.items()
            for fk in instance.relation.foreign_keys
        }
        found = {
            (
                ind.dependent_relation,
                ind.dependent_columns[0],
                ind.referenced_relation,
                ind.referenced_columns[0],
            )
            for ind in inds
        }
        assert fk_pairs <= found


class TestVerifyForeignKeys:
    def test_normalization_output_passes(self, address):
        result = normalize(address, algorithm="bruteforce")
        audits = verify_foreign_keys(result.instances)
        assert audits  # at least the Postcode FK
        assert all(audit.valid for audit in audits)

    def test_dangling_value_detected(self):
        target = make("dim", ["id"], [(1,)], primary_key=("id",))
        source = make(
            "fact",
            ["id"],
            [(1,), (2,)],
            foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
        )
        audits = verify_foreign_keys({"dim": target, "fact": source})
        assert not audits[0].inclusion_holds
        assert (2,) in audits[0].dangling_values
        assert "BROKEN" in audits[0].to_str()

    def test_non_unique_target_detected(self):
        target = make("dim", ["id"], [(1,), (1,)])
        source = make(
            "fact",
            ["id"],
            [(1,)],
            foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
        )
        audits = verify_foreign_keys({"dim": target, "fact": source})
        assert audits[0].inclusion_holds
        assert not audits[0].referenced_unique
        assert not audits[0].valid

    def test_missing_target_relation(self):
        source = make(
            "fact",
            ["id"],
            [(1,)],
            foreign_keys=[ForeignKey(("id",), "ghost", ("id",))],
        )
        audits = verify_foreign_keys({"fact": source})
        assert not audits[0].valid
