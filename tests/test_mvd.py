"""Tests for MVD discovery and the dependency basis."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_tables import random_instance
from repro.extensions.mvd import dependency_basis, discover_mvds, mvd_holds
from repro.model.attributes import full_mask
from repro.model.instance import RelationInstance
from repro.model.schema import Relation


def course_instance():
    """The textbook MVD example: teacher ->> book independent of student."""
    relation = Relation("course", ("teacher", "book", "student"))
    rows = []
    books = {"Curie": ["B1", "B2"], "Noether": ["B3"]}
    students = {"Curie": ["s1", "s2", "s3"], "Noether": ["s4", "s5"]}
    for teacher in books:
        for book in books[teacher]:
            for student in students[teacher]:
                rows.append((teacher, book, student))
    return RelationInstance.from_rows(relation, rows)


def reference_mvd(instance, lhs, rhs, null_equals_null=True):
    """Definition check: chase of the two tuples (swap test)."""
    from repro.structures.partitions import column_value_ids

    probes = [
        column_value_ids(instance.columns_data[i], null_equals_null)
        for i in range(instance.arity)
    ]
    everything = full_mask(instance.arity)
    rhs &= ~lhs
    other = everything & ~(lhs | rhs)
    if not rhs or not other:
        return True
    rows = list(range(instance.num_rows))
    existing = {
        tuple(probes[i][row] for i in range(instance.arity)) for row in rows
    }
    for r1, r2 in itertools.product(rows, repeat=2):
        if any(probes[i][r1] != probes[i][r2] for i in _bits(lhs)):
            continue
        swapped = tuple(
            probes[i][r1] if (rhs >> i) & 1 or (lhs >> i) & 1 else probes[i][r2]
            for i in range(instance.arity)
        )
        if swapped not in existing:
            return False
    return True


def _bits(mask):
    out = []
    i = 0
    while mask:
        if mask & 1:
            out.append(i)
        mask >>= 1
        i += 1
    return out


class TestMvdHolds:
    def test_course_example(self):
        course = course_instance()
        teacher = course.relation.mask_of(["teacher"])
        book = course.relation.mask_of(["book"])
        student = course.relation.mask_of(["student"])
        assert mvd_holds(course, teacher, book)
        assert mvd_holds(course, teacher, student)  # the complement
        assert not mvd_holds(course, book, teacher) or True  # may hold; see below

    def test_violated_mvd(self):
        relation = Relation("r", ("x", "y", "z"))
        rows = [(1, "a", "p"), (1, "b", "q")]  # (a,q) missing -> no cross product
        instance = RelationInstance.from_rows(relation, rows)
        assert not mvd_holds(instance, 0b001, 0b010)

    def test_trivial_mvds_hold(self):
        instance = course_instance()
        assert mvd_holds(instance, 0b011, 0b010)  # rhs ⊆ lhs
        assert mvd_holds(instance, 0b001, 0b110)  # lhs ∪ rhs = R

    def test_fd_implies_mvd(self):
        relation = Relation("r", ("x", "y", "z"))
        rows = [(1, "a", "p"), (1, "a", "q"), (2, "b", "p")]
        instance = RelationInstance.from_rows(relation, rows)
        # x -> y holds, hence x ->> y must hold
        assert mvd_holds(instance, 0b001, 0b010)

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=2**5 - 1),
        st.integers(min_value=0, max_value=2**5 - 1),
    )
    @settings(max_examples=30)
    def test_matches_swap_definition(self, seed, cols, rows, lhs, rhs):
        instance = random_instance(seed, cols, rows, domain_size=2)
        everything = full_mask(cols)
        lhs &= everything
        rhs &= everything & ~lhs
        assert mvd_holds(instance, lhs, rhs) == reference_mvd(
            instance, lhs, rhs
        )


class TestDependencyBasis:
    def test_course_basis(self):
        course = course_instance()
        teacher = course.relation.mask_of(["teacher"])
        basis = dependency_basis(course, teacher)
        book = course.relation.mask_of(["book"])
        student = course.relation.mask_of(["student"])
        assert sorted(basis) == sorted([book, student])

    def test_basis_is_partition(self):
        instance = random_instance(3, 5, 10, domain_size=2)
        for lhs in (0, 0b00001, 0b00011):
            basis = dependency_basis(instance, lhs)
            union = 0
            for block in basis:
                assert block & union == 0, "blocks overlap"
                union |= block
            assert union == full_mask(5) & ~lhs

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=20)
    def test_every_block_is_a_valid_mvd(self, seed, cols, rows):
        instance = random_instance(seed, cols, rows, domain_size=2)
        for lhs in range(min(1 << cols, 8)):
            for block in dependency_basis(instance, lhs):
                assert mvd_holds(instance, lhs, block)

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=3, max_value=4),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=15)
    def test_basis_characterizes_all_mvds(self, seed, cols, rows):
        """X ->> W holds iff W (within R-X) is a union of basis blocks."""
        instance = random_instance(seed, cols, rows, domain_size=2)
        everything = full_mask(cols)
        for lhs in (0, 1, 3):
            lhs &= everything
            basis = dependency_basis(instance, lhs)
            for w in range(1 << cols):
                w &= everything & ~lhs
                if not w:
                    continue
                is_union = all(
                    (block & w == block) or (block & w == 0) for block in basis
                )
                assert mvd_holds(instance, lhs, w) == is_union


class TestDiscoverMvds:
    def test_course_discovery(self):
        course = course_instance()
        mvds = discover_mvds(course, max_lhs_size=1)
        teacher = course.relation.mask_of(["teacher"])
        book = course.relation.mask_of(["book"])
        student = course.relation.mask_of(["student"])
        found = {(m.lhs, m.rhs) for m in mvds}
        assert (teacher, book) in found
        assert (teacher, student) in found

    def test_fd_equivalent_blocks_excluded_by_default(self):
        relation = Relation("r", ("x", "y", "z"))
        rows = [(1, "a", "p"), (1, "a", "q"), (2, "b", "r")]
        instance = RelationInstance.from_rows(relation, rows)
        mvds = discover_mvds(instance, max_lhs_size=1)
        assert all(
            not (m.lhs == 0b001 and m.rhs == 0b010) for m in mvds
        )  # x -> y is an FD, not reported as MVD
        with_fds = discover_mvds(
            instance, max_lhs_size=1, include_fd_equivalent=True
        )
        assert any(m.lhs == 0b001 and m.rhs == 0b010 for m in with_fds)

    def test_to_str(self):
        course = course_instance()
        mvds = discover_mvds(course, max_lhs_size=1)
        rendered = {m.to_str(course.columns) for m in mvds}
        assert "teacher ->> book" in rendered
