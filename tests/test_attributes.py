"""Unit tests for the bitmask attribute-set helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.attributes import (
    bits_of,
    count_bits,
    full_mask,
    is_subset,
    iter_bits,
    lowest_bit_index,
    mask_of,
    mask_of_names,
    names_of,
)


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_single(self):
        assert mask_of([3]) == 0b1000

    def test_multiple(self):
        assert mask_of([0, 2, 5]) == 0b100101

    def test_duplicates_collapse(self):
        assert mask_of([1, 1, 1]) == 0b10


class TestMaskOfNames:
    def test_resolves_names(self):
        assert mask_of_names(["b", "d"], ("a", "b", "c", "d")) == 0b1010

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown attribute"):
            mask_of_names(["x"], ("a", "b"))

    def test_empty_names(self):
        assert mask_of_names([], ("a",)) == 0


class TestIteration:
    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_bits_of_tuple(self):
        assert bits_of(0b110) == (1, 2)

    def test_iter_bits_empty(self):
        assert list(iter_bits(0)) == []

    def test_names_of(self):
        assert names_of(0b101, ("x", "y", "z")) == ("x", "z")

    @given(st.sets(st.integers(min_value=0, max_value=40)))
    def test_roundtrip(self, indices):
        assert set(iter_bits(mask_of(indices))) == indices


class TestPredicates:
    def test_count_bits(self):
        assert count_bits(0b1011) == 3

    def test_is_subset_true(self):
        assert is_subset(0b101, 0b1101)

    def test_is_subset_false(self):
        assert not is_subset(0b11, 0b101)

    def test_empty_is_subset_of_everything(self):
        assert is_subset(0, 0b111)
        assert is_subset(0, 0)

    def test_full_mask(self):
        assert full_mask(4) == 0b1111
        assert full_mask(0) == 0

    def test_lowest_bit_index(self):
        assert lowest_bit_index(0b1100) == 2

    def test_lowest_bit_index_empty_raises(self):
        with pytest.raises(ValueError):
            lowest_bit_index(0)

    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=2**20 - 1),
    )
    def test_is_subset_matches_set_semantics(self, a, b):
        assert is_subset(a, b) == set(iter_bits(a)).issubset(set(iter_bits(b)))
