"""Targeted tests for smaller branches across the library."""

import pytest

from repro.core.closure import calculate_closure
from repro.core.normalize import Normalizer, normalize
from repro.core.result import DecompositionStep
from repro.discovery.dfd import DFD
from repro.discovery.tane import Tane
from repro.model.fd import FD, FDSet
from repro.structures.bloom import BloomFilter


class TestNormalizerVariants:
    def test_improved_closure_pipeline(self, address):
        result = normalize(
            address, algorithm="bruteforce", closure_algorithm="improved"
        )
        assert result.total_values == 27

    def test_naive_closure_pipeline(self, address):
        result = normalize(
            address, algorithm="bruteforce", closure_algorithm="naive"
        )
        assert result.total_values == 27

    def test_tane_instance_pipeline(self, address):
        result = normalize(address, algorithm=Tane())
        assert result.total_values == 27

    def test_dfd_instance_pipeline(self, address):
        result = normalize(address, algorithm=DFD(seed=1))
        assert result.total_values == 27

    def test_exact_distinct_pipeline(self, address):
        result = normalize(address, algorithm="bruteforce", exact_distinct=True)
        assert result.total_values == 27

    def test_max_lhs_size_forwarded(self, address):
        normalizer = Normalizer(algorithm="hyfd", max_lhs_size=2)
        assert normalizer.algorithm.max_lhs_size == 2

    def test_3nf_address(self, address):
        # the address example's violating FD splits no other LHS, so
        # 3NF and BCNF coincide here
        result = normalize(address, algorithm="bruteforce", target="3nf")
        assert result.total_values == 27


class TestClosureDispatch:
    def test_worker_count_forwarded(self):
        fds = FDSet(3, [FD(0b001, 0b010), FD(0b010, 0b100)])
        out = calculate_closure(fds, "improved", n_workers=3)
        assert out.rhs_of(0b001) == 0b110


class TestBloomEdges:
    def test_with_capacity_zero_items(self):
        bloom = BloomFilter.with_capacity(0)
        bloom.add("x")
        assert "x" in bloom

    def test_minimum_bits_enforced(self):
        assert BloomFilter.with_capacity(1).num_bits >= 64


class TestResultRendering:
    def test_decomposition_step_to_str(self):
        step = DecompositionStep(
            parent="r",
            parent_columns=("a", "b", "c"),
            r1="r",
            r2="r_b",
            lhs=("b",),
            rhs=("c",),
            chosen_rank=0,
            num_candidates=3,
            score=0.75,
        )
        text = step.to_str()
        assert "r: split on b -> c" in text
        assert "rank 1/3" in text

    def test_result_without_steps(self, address):
        from repro.core.selection import ScriptedDecider

        result = normalize(
            address,
            algorithm="bruteforce",
            decider=ScriptedDecider(fd_choices=[None]),
        )
        text = result.to_str()
        assert "Decomposition log" not in text
        assert "values: 30 -> 30" in text


class TestCliErrorPaths:
    def test_load_fds_requires_single_file(self, tmp_path):
        from repro.cli import main
        from repro.io.csv_io import write_csv
        from repro.io.datasets import address_example, planets_example

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_csv(address_example(), a)
        write_csv(planets_example(), b)
        with pytest.raises(SystemExit, match="exactly one"):
            main([str(a), str(b), "--load-fds", "whatever.json"])

    def test_4nf_requires_single_file(self, tmp_path):
        from repro.cli import main
        from repro.io.csv_io import write_csv
        from repro.io.datasets import address_example, planets_example

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_csv(address_example(), a)
        write_csv(planets_example(), b)
        with pytest.raises(SystemExit, match="exactly one"):
            main([str(a), str(b), "--target", "4nf"])


class TestFourNFOptions:
    def test_lhs_bound_zero_only_considers_nothing(self):
        from repro.extensions.fournf import FourNFNormalizer
        from repro.model.instance import RelationInstance
        from repro.model.schema import Relation

        rows = [("t", "b", "s"), ("t", "b2", "s2")]
        instance = RelationInstance.from_rows(
            Relation("r", ("x", "y", "z")), rows
        )
        result = FourNFNormalizer(
            algorithm="bruteforce", max_mvd_lhs_size=0
        ).run(instance)
        # with LHS bound 0 only empty-LHS MVDs exist, and those are
        # skipped by design -> no MVD steps
        assert result.mvd_steps == []


class TestSchemaColumnsSubset:
    def test_helper(self):
        from repro.model.schema import columns_subset

        assert columns_subset(("a", "b", "c"), 0b101) == ("a", "c")
